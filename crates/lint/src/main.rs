//! The `smn-lint` binary: CI gate and developer tool.
//!
//! ```text
//! smn-lint [--workspace] [--artifacts DIR]... [--root PATH] [--json]
//! ```
//!
//! With no engine flags, runs the source engine plus the artifact engine
//! over `artifacts/` when that directory exists. Exit codes: 0 clean,
//! 1 deny-level findings, 2 usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use smn_lint::config::Config;
use smn_lint::diag::Report;
use smn_lint::{find_workspace_root, run_artifacts, run_source};

const USAGE: &str = "usage: smn-lint [--workspace] [--artifacts DIR]... [--root PATH] [--json]";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut artifact_dirs: Vec<PathBuf> = Vec::new();
    let mut root_arg: Option<PathBuf> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--artifacts" => match args.next() {
                Some(dir) => artifact_dirs.push(PathBuf::from(dir)),
                None => return usage_error("--artifacts needs a directory"),
            },
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match root_arg.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("smn-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    // Default run: source engine plus the checked-in artifact corpus.
    if !workspace && artifact_dirs.is_empty() {
        workspace = true;
        let default_dir = root.join("artifacts");
        if default_dir.is_dir() {
            artifact_dirs.push(default_dir);
        }
    }

    let cfg = match Config::load(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smn-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = Report::default();
    if workspace {
        report.merge(run_source(&root, &cfg));
    }
    for dir in &artifact_dirs {
        let dir = if dir.is_absolute() { dir.clone() } else { root.join(dir) };
        report.merge(run_artifacts(&root, &dir));
    }

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("smn-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
