//! The `smn-lint` binary: CI gate and developer tool.
//!
//! ```text
//! smn-lint [--workspace] [--artifacts DIR]... [--deep] [--root PATH] [--json]
//!          [--callgraph-out PATH] [--write-panic-baseline]
//! ```
//!
//! With no engine flags, runs the source engine plus the artifact engine
//! over `artifacts/` when that directory exists. `--deep` adds the
//! whole-workspace call-graph pass (determinism taint, panic
//! reachability vs. `panic-baseline.txt`, lock discipline) and can emit
//! the canonical call-graph artifact via `--callgraph-out`. Exit codes:
//! 0 clean, 1 deny-level findings, 2 usage or configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use serde::{Serialize, Value};
use smn_lint::config::Config;
use smn_lint::deep::{self, DeepOptions};
use smn_lint::diag::Report;
use smn_lint::{find_workspace_root, reach, run_artifacts, run_source};

const USAGE: &str = "usage: smn-lint [--workspace] [--artifacts DIR]... [--deep] [--root PATH] \
                     [--json] [--callgraph-out PATH] [--write-panic-baseline]";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deep_pass = false;
    let mut artifact_dirs: Vec<PathBuf> = Vec::new();
    let mut root_arg: Option<PathBuf> = None;
    let mut json = false;
    let mut callgraph_out: Option<PathBuf> = None;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deep" => deep_pass = true,
            "--artifacts" => match args.next() {
                Some(dir) => artifact_dirs.push(PathBuf::from(dir)),
                None => return usage_error("--artifacts needs a directory"),
            },
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a path"),
            },
            "--callgraph-out" => match args.next() {
                Some(path) => {
                    deep_pass = true;
                    callgraph_out = Some(PathBuf::from(path));
                }
                None => return usage_error("--callgraph-out needs a path"),
            },
            "--write-panic-baseline" => {
                deep_pass = true;
                write_baseline = true;
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match root_arg.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("smn-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    // Default run: source engine plus the checked-in artifact corpus.
    if !workspace && artifact_dirs.is_empty() && !deep_pass {
        workspace = true;
        let default_dir = root.join("artifacts");
        if default_dir.is_dir() {
            artifact_dirs.push(default_dir);
        }
    }

    let cfg = match Config::load(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smn-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = Report::default();
    if workspace {
        report.merge(run_source(&root, &cfg));
    }
    for dir in &artifact_dirs {
        let dir = if dir.is_absolute() { dir.clone() } else { root.join(dir) };
        report.merge(run_artifacts(&root, &dir));
    }

    let mut deep_result = None;
    if deep_pass {
        let baseline_path = root.join("panic-baseline.txt");
        let baseline = if write_baseline {
            // Regenerating: the old ratchet (and its findings) are moot.
            None
        } else {
            match std::fs::read_to_string(&baseline_path) {
                Ok(text) => match reach::parse_baseline(&text) {
                    Ok(b) => Some(b),
                    Err(e) => {
                        eprintln!("smn-lint: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(_) => None,
            }
        };
        let opts = DeepOptions { baseline };
        let mut result = deep::analyze_workspace(&root, &cfg, &opts);

        if write_baseline {
            let text = reach::render_baseline(&result.summary.panic_per_crate);
            if let Err(e) = std::fs::write(&baseline_path, text) {
                eprintln!("smn-lint: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            eprintln!("smn-lint: wrote {}", baseline_path.display());
            // The per-endpoint warns exist to show the surface when no
            // ratchet is in force; having just committed the ratchet,
            // they would only be noise.
            let findings =
                result.report.findings.into_iter().filter(|d| d.rule != reach::RULE).collect();
            result.report = Report::from_findings(findings);
        }
        if let Some(out) = &callgraph_out {
            let out = if out.is_absolute() { out.clone() } else { root.join(out) };
            if let Err(e) = std::fs::write(&out, &result.callgraph_json) {
                eprintln!("smn-lint: cannot write {}: {e}", out.display());
                return ExitCode::from(2);
            }
            eprintln!("smn-lint: wrote {}", out.display());
        }
        report.merge(result.report.clone());
        deep_result = Some(result);
    }

    if json {
        match &deep_result {
            Some(d) => {
                let root_value = Value::Map(vec![
                    ("report".to_string(), report.to_value()),
                    ("deep".to_string(), d.summary.to_value()),
                ]);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&root_value)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
                );
            }
            None => println!("{}", report.to_json()),
        }
    } else {
        print!("{}", report.render());
        if let Some(d) = &deep_result {
            let s = &d.summary;
            println!(
                "smn-lint --deep: {} function(s), {} edge(s), {} unresolved, {} external; \
                 {} det endpoint(s); {} panic-reachable public API(s)",
                s.functions,
                s.edges,
                s.unresolved,
                s.external,
                s.det_endpoints,
                s.panic_per_crate.values().sum::<usize>()
            );
        }
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("smn-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
