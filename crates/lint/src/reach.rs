//! Interprocedural panic reachability, ratcheted by a committed baseline.
//!
//! A function *can panic* when it holds an unwaived local panic site
//! (`panic!`-family macro, assert, `.unwrap()`, `.expect()`, slice
//! indexing) or transitively calls one that can. The analysis reports
//! every **public API function in library code** that can panic, with the
//! shortest witness chain to a concrete site.
//!
//! The count is ratcheted per crate through `panic-baseline.txt` (the
//! same idiom as `clippy-baseline.txt`): a crate exceeding its committed
//! count is a deny, and the offending endpoints are reported with their
//! witnesses as evidence. Without a baseline (fixture runs,
//! `--write-panic-baseline`), every reachable endpoint is reported as a
//! warn finding so the full surface is visible.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::config::Config;
use crate::diag::{Diagnostic, Level};
use crate::graph::extract::PanicKind;
use crate::graph::CallGraph;

/// Rule id for per-endpoint reachability witnesses.
pub const RULE: &str = "deep/panic-reachability";
/// Rule id for a crate exceeding its committed baseline.
pub const BASELINE_RULE: &str = "deep/panic-baseline";

/// One public endpoint that can reach a panic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Witness {
    /// Endpoint function id.
    pub endpoint: String,
    /// Call chain from the endpoint to the panicking function.
    pub chain: Vec<String>,
    /// The concrete site: `file:line (what)`.
    pub site: String,
}

/// Full analysis output.
#[derive(Debug, Clone, Default)]
pub struct ReachResult {
    /// Findings (per-endpoint warns without a baseline; denies over it).
    pub findings: Vec<Diagnostic>,
    /// Public library endpoints that can panic, sorted by id.
    pub witnesses: Vec<Witness>,
    /// Panic-capable public endpoints per crate.
    pub per_crate: BTreeMap<String, usize>,
}

/// Parse `panic-baseline.txt`: one `crate count` pair per line, `#`
/// comments allowed.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(krate), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("panic-baseline.txt:{}: expected `crate count`", ln + 1));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("panic-baseline.txt:{}: bad count `{count}`", ln + 1))?;
        map.insert(krate.to_string(), count);
    }
    Ok(map)
}

/// Render a per-crate map in baseline format.
#[must_use]
pub fn render_baseline(per_crate: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# Panic-reachability ratchet: public library API functions per crate that can\n\
         # transitively reach a panic site. Regenerate with:\n\
         #   smn-lint --deep --write-panic-baseline\n\
         # Counts may only go down.\n",
    );
    for (krate, count) in per_crate {
        out.push_str(&format!("{krate} {count}\n"));
    }
    out
}

/// Run the analysis. `baseline` is `Some` when a committed
/// `panic-baseline.txt` is in force.
#[must_use]
pub fn run(
    graph: &CallGraph,
    cfg: &Config,
    baseline: Option<&BTreeMap<String, usize>>,
) -> ReachResult {
    let n = graph.nodes.len();
    let adj = graph.out_adjacency();
    let radj = graph.in_adjacency();

    // Unwaived local sites per node. Existing per-file panic waivers
    // (panic/unwrap, …) and deep waivers at the site line both count —
    // a site the charter already blessed is not re-litigated here.
    let mut local: Vec<Vec<(PanicKind, u32, u32)>> = vec![Vec::new(); n];
    for (i, node) in graph.nodes.iter().enumerate() {
        for p in &node.panics {
            let per_file_rule = match p.kind {
                PanicKind::Macro => Some("panic/panic-macro"),
                PanicKind::Unwrap => Some("panic/unwrap"),
                PanicKind::Expect => Some("panic/expect"),
                PanicKind::Assert | PanicKind::Index => None,
            };
            let waived = per_file_rule.is_some_and(|r| graph.waived(&node.file, r, p.line))
                || graph.waived(&node.file, RULE, p.line);
            if !waived {
                local[i].push((p.kind, p.line, p.col));
            }
        }
    }

    // can-panic: reverse BFS from nodes with local sites.
    let mut can_panic = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for i in 0..n {
        if !local[i].is_empty() {
            can_panic[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &caller in &radj[cur] {
            if !can_panic[caller] {
                can_panic[caller] = true;
                queue.push_back(caller);
            }
        }
    }

    // Witnesses: shortest chain endpoint → site via forward BFS over
    // can-panic nodes only.
    let mut witnesses = Vec::new();
    let mut per_crate: BTreeMap<String, usize> = BTreeMap::new();
    let mut endpoint_info: Vec<(usize, Witness)> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !(node.public && node.lib && can_panic[i]) {
            continue;
        }
        if graph.waived(&node.file, RULE, node.line) {
            continue;
        }
        let w = witness_for(i, graph, &adj, &local);
        per_crate.entry(node.krate.clone()).and_modify(|c| *c += 1).or_insert(1);
        endpoint_info.push((i, w.clone()));
        witnesses.push(w);
    }
    witnesses.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));

    let mut findings = Vec::new();
    match baseline {
        None => {
            // No ratchet in force: every endpoint is a warn finding with
            // its witness, so fixture runs see exact spans.
            for (i, w) in &endpoint_info {
                let node = &graph.nodes[*i];
                findings.push(
                    Diagnostic::new(
                        RULE,
                        Level::Warn,
                        &node.file,
                        node.line,
                        1,
                        format!("public API `{}` can reach a panic: {}", node.id, w.site),
                    )
                    .with_note(format!("witness: {}", w.chain.join(" -> "))),
                );
            }
        }
        Some(base) => {
            let level = cfg.level(BASELINE_RULE).unwrap_or(Level::Deny);
            for (krate, &count) in &per_crate {
                let allowed = base.get(krate).copied().unwrap_or(0);
                if count <= allowed {
                    continue;
                }
                findings.push(
                    Diagnostic::new(
                        BASELINE_RULE,
                        level,
                        "panic-baseline.txt",
                        0,
                        0,
                        format!(
                            "crate `{krate}`: {count} public API function(s) can reach a \
                             panic, baseline allows {allowed}"
                        ),
                    )
                    .with_note(
                        "fix the new panic path or, if intentional, regenerate with \
                         --write-panic-baseline and justify the increase in review"
                            .to_string(),
                    ),
                );
                // Evidence: the endpoints in the offending crate.
                for (i, w) in &endpoint_info {
                    let node = &graph.nodes[*i];
                    if node.krate == *krate {
                        findings.push(
                            Diagnostic::new(
                                RULE,
                                Level::Warn,
                                &node.file,
                                node.line,
                                1,
                                format!("public API `{}` can reach a panic: {}", node.id, w.site),
                            )
                            .with_note(format!("witness: {}", w.chain.join(" -> "))),
                        );
                    }
                }
            }
        }
    }

    ReachResult { findings, witnesses, per_crate }
}

/// Shortest chain from `start` to any node with a local site.
fn witness_for(
    start: usize,
    graph: &CallGraph,
    adj: &[Vec<(usize, u32)>],
    local: &[Vec<(PanicKind, u32, u32)>],
) -> Witness {
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut seen = vec![false; graph.nodes.len()];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut hit = start;
    'bfs: while let Some(cur) = queue.pop_front() {
        if !local[cur].is_empty() {
            hit = cur;
            break 'bfs;
        }
        for &(next, _) in &adj[cur] {
            if !seen[next] {
                seen[next] = true;
                parent[next] = Some(cur);
                queue.push_back(next);
            }
        }
    }
    let mut ids = vec![hit];
    let mut cur = hit;
    while cur != start {
        match parent[cur] {
            Some(p) => {
                ids.push(p);
                cur = p;
            }
            None => break,
        }
    }
    ids.reverse();
    let chain: Vec<String> = ids.iter().map(|&i| graph.nodes[i].id.clone()).collect();
    let site = local[hit]
        .first()
        .map(|(kind, line, _)| format!("{}:{} ({})", graph.nodes[hit].file, line, kind.label()))
        .unwrap_or_else(|| format!("{} (unlocated)", graph.nodes[hit].file));
    Witness { endpoint: graph.nodes[start].id.clone(), chain, site }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    fn analyze(files: &[(&str, &str)], baseline: Option<&BTreeMap<String, usize>>) -> ReachResult {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        let cfg = Config::default();
        let g = graph::build(&owned, &cfg);
        run(&g, &cfg, baseline)
    }

    const TREE: &[(&str, &str)] = &[
        (
            "crates/core/src/lib.rs",
            "pub fn api() { inner(); }\nfn inner(v: Vec<u32>) -> u32 { v[0] }\npub fn safe() -> u32 { 1 }\n",
        ),
    ];

    #[test]
    fn witness_chain_reaches_the_site() {
        let r = analyze(TREE, None);
        assert_eq!(r.witnesses.len(), 1);
        let w = &r.witnesses[0];
        assert_eq!(w.endpoint, "core::api");
        assert_eq!(w.chain, vec!["core::api".to_string(), "core::inner".to_string()]);
        assert!(w.site.contains("slice indexing"), "{}", w.site);
        assert_eq!(r.per_crate.get("core"), Some(&1));
        // Without a baseline the endpoint is a warn finding.
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, RULE);
        assert_eq!(r.findings[0].level, Level::Warn);
    }

    #[test]
    fn baseline_within_budget_is_clean() {
        let mut base = BTreeMap::new();
        base.insert("core".to_string(), 1usize);
        let r = analyze(TREE, Some(&base));
        assert!(r.findings.is_empty());
        assert_eq!(r.witnesses.len(), 1);
    }

    #[test]
    fn baseline_exceeded_is_a_deny_with_evidence() {
        let base = BTreeMap::new();
        let r = analyze(TREE, Some(&base));
        let denies: Vec<_> = r.findings.iter().filter(|d| d.rule == BASELINE_RULE).collect();
        assert_eq!(denies.len(), 1);
        assert_eq!(denies[0].level, Level::Deny);
        assert!(r.findings.iter().any(|d| d.rule == RULE));
    }

    #[test]
    fn waived_site_does_not_count() {
        let r = analyze(
            &[(
                "crates/core/src/lib.rs",
                "pub fn api() -> u32 { idx() }\n\
                 fn idx(v: Vec<u32>) -> u32 {\n    v[0] // smn-lint: allow(deep/panic-reachability) -- bounds checked by caller\n}\n",
            )],
            None,
        );
        assert!(r.witnesses.is_empty(), "{:?}", r.witnesses);
    }

    #[test]
    fn baseline_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("core".to_string(), 3usize);
        m.insert("te".to_string(), 0usize);
        let text = render_baseline(&m);
        assert_eq!(parse_baseline(&text).unwrap(), m);
        assert!(parse_baseline("core x\n").is_err());
    }
}
