//! Source engine: token-level rules over every workspace crate.
//!
//! Each `.rs` file under `crates/` is lexed with the spanned lexer from the
//! vendored `syn` and walked once. Rules fire on token patterns — method
//! calls like `.unwrap()`, paths like `Instant::now`, macro invocations,
//! `as` casts — never on raw text, so literals and comments cannot produce
//! false positives.
//!
//! Two kinds of region suppress findings:
//!
//! * **test code** — any item under an attribute whose tokens include
//!   `test` (and not `not`, so `#[cfg(not(test))]` stays live): tests may
//!   unwrap and use wall clocks freely;
//! * **allow annotations** — a comment of the form
//!   `smn-lint: allow(rule) -- reason` waives `rule` for its own line
//!   (trailing form), the next item (standalone form), or the whole file
//!   (as a `//!` inner comment). The reason is mandatory.

use std::path::{Path, PathBuf};

use syn::{Token, TokenKind};

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::scan::{self, Allow, AllowIssueKind};

/// Idents that mean entropy-seeded randomness.
const RNG_IDENTS: &[&str] = &["thread_rng", "ThreadRng", "OsRng", "from_entropy"];

/// Idents that mean wall-clock time wherever they appear.
const WALL_CLOCK_IDENTS: &[&str] = &["SystemTime", "UNIX_EPOCH"];

/// Macro names that abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Cast targets that can truncate the wide counters and f64 rates flowing
/// through telemetry ingest and TE.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Scan every Rust source file under `root/crates`, returning findings and
/// the number of files scanned.
#[must_use]
pub fn scan_workspace(root: &Path, cfg: &Config) -> (Vec<Diagnostic>, usize) {
    let mut files = Vec::new();
    let mut dir_errors = Vec::new();
    collect_rs(&root.join("crates"), &mut files, &mut dir_errors);
    files.sort();

    let mut findings = Vec::new();
    // An unreadable directory means an unknown number of files went
    // unchecked: report it, so a partial scan can't masquerade as clean.
    for (dir, err) in dir_errors {
        let rel = dir
            .strip_prefix(root)
            .unwrap_or(&dir)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        findings.push(unparsed(&rel, 0, 0, format!("cannot read directory: {err}")));
    }
    let mut scanned = 0usize;
    for path in files {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if !cfg.scanned(&rel) {
            continue;
        }
        scanned += 1;
        match std::fs::read_to_string(&path) {
            Ok(src) => findings.extend(scan_file(&rel, &src, cfg)),
            Err(e) => findings.push(unparsed(&rel, 0, 0, format!("cannot read file: {e}"))),
        }
    }
    (findings, scanned)
}

/// Recursively collect `.rs` files under `dir`. A directory that cannot
/// be read is pushed onto `errors` instead of being silently skipped.
pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>, errors: &mut Vec<(PathBuf, String)>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            errors.push((dir.to_path_buf(), e.to_string()));
            return;
        }
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out, errors);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn unparsed(file: &str, line: u32, col: u32, message: String) -> Diagnostic {
    Diagnostic::new("source/unparsed", crate::diag::Level::Deny, file, line, col, message)
}

/// Run every source rule over one file.
#[must_use]
pub fn scan_file(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let file = match syn::parse_file(src) {
        Ok(f) => f,
        Err(e) => {
            return vec![unparsed(rel_path, e.span.line, e.span.col, e.message)];
        }
    };
    let mut scan = FileScan {
        path: rel_path,
        tokens: &file.tokens,
        cfg,
        allows: Vec::new(),
        test_ranges: Vec::new(),
        findings: Vec::new(),
    };
    scan.collect_allows();
    scan.collect_test_ranges();
    scan.run_rules();
    scan.findings
}

struct FileScan<'a> {
    path: &'a str,
    tokens: &'a [Token],
    cfg: &'a Config,
    allows: Vec<Allow>,
    /// Token-index ranges (inclusive) that are test code.
    test_ranges: Vec<(usize, usize)>,
    findings: Vec<Diagnostic>,
}

impl<'a> FileScan<'a> {
    /// Index of the next non-comment token at or after `idx`.
    fn next_code(&self, idx: usize) -> Option<usize> {
        scan::next_code(self.tokens, idx)
    }

    // ---- allow annotations -------------------------------------------

    fn collect_allows(&mut self) {
        let known = |rule: &str| self.cfg.known_rule(rule);
        let (allows, issues) = scan::collect_allows(self.tokens, &known);
        self.allows = allows;
        for issue in issues {
            match issue.kind {
                AllowIssueKind::MissingReason => self.push_raw(
                    "annotation/missing-reason",
                    issue.line,
                    issue.col,
                    issue.message,
                    "append `-- <why this waiver is sound>` so the exemption stays auditable",
                ),
                AllowIssueKind::UnknownRule => {
                    self.push_raw(
                        "annotation/unknown-rule",
                        issue.line,
                        issue.col,
                        issue.message,
                        "",
                    );
                }
            }
        }
    }

    fn allowed(&self, rule: &str, line: u32) -> bool {
        scan::allowed(&self.allows, rule, line)
    }

    // ---- test regions ------------------------------------------------

    fn collect_test_ranges(&mut self) {
        self.test_ranges = scan::collect_test_ranges(self.tokens);
    }

    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= idx && idx <= e)
    }

    // ---- rules -------------------------------------------------------

    fn run_rules(&mut self) {
        let det = self.cfg.is_deterministic_path(self.path);
        let casts = self.cfg.is_cast_path(self.path);
        let panics = self.cfg.panic_rules_apply(self.path);

        for idx in 0..self.tokens.len() {
            let tok = &self.tokens[idx];
            if tok.kind != TokenKind::Ident && tok.kind != TokenKind::Punct {
                continue;
            }

            if RNG_IDENTS.iter().any(|r| tok.is_ident(r)) {
                self.fire(
                    "determinism/unseeded-rng",
                    idx,
                    format!("`{}` draws entropy outside the campaign seed", tok.text),
                    "seed an explicit StdRng (seed_from_u64) from the scenario config",
                );
            }

            if WALL_CLOCK_IDENTS.iter().any(|w| tok.is_ident(w)) {
                self.fire(
                    "determinism/wall-clock",
                    idx,
                    format!("`{}` reads the wall clock", tok.text),
                    "thread the simulation tick / log timestamp through instead",
                );
            }
            if tok.is_ident("Instant") && self.path_segment(idx, "now") {
                self.fire(
                    "determinism/wall-clock",
                    idx,
                    "`Instant::now` reads the wall clock".to_string(),
                    "use bench::timer for measured sections; simulation code must use tick time",
                );
            }

            if det && (tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
                self.fire(
                    "determinism/hash-iter",
                    idx,
                    format!("`{}` on a deterministic simulation path", tok.text),
                    "use BTreeMap/BTreeSet so iteration order cannot leak into outputs",
                );
            }

            if panics {
                if self.method_call(idx, "unwrap") {
                    self.fire(
                        "panic/unwrap",
                        idx + 1,
                        "`.unwrap()` in library code".to_string(),
                        "propagate a typed error, or restructure so the value is infallible",
                    );
                }
                if self.method_call(idx, "expect") {
                    self.fire(
                        "panic/expect",
                        idx + 1,
                        "`.expect()` in library code".to_string(),
                        "propagate a typed error, or restructure so the value is infallible",
                    );
                }
                if PANIC_MACROS.iter().any(|m| tok.is_ident(m))
                    && self.tokens.get(idx + 1).is_some_and(|t| t.is_punct('!'))
                {
                    self.fire(
                        "panic/panic-macro",
                        idx,
                        format!("`{}!` in library code", tok.text),
                        "return a typed error; panics take the whole control plane down",
                    );
                }
            }

            if casts && tok.is_ident("as") {
                if let Some(target) = self
                    .next_code(idx + 1)
                    .map(|i| &self.tokens[i])
                    .filter(|t| NARROW_TARGETS.iter().any(|n| t.is_ident(n)))
                {
                    self.fire(
                        "casts/narrowing",
                        idx,
                        format!("unchecked `as {}` can truncate silently", target.text),
                        "use try_from with a typed error, or clamp with a documented \
                         saturation policy",
                    );
                }
            }
        }
    }

    /// Is token `idx` followed by `::segment`?
    fn path_segment(&self, idx: usize, segment: &str) -> bool {
        self.tokens.get(idx + 1).is_some_and(|t| t.is_punct(':'))
            && self.tokens.get(idx + 2).is_some_and(|t| t.is_punct(':'))
            && self.tokens.get(idx + 3).is_some_and(|t| t.is_ident(segment))
    }

    /// Is token `idx` the `.` of a `.name(` method call?
    fn method_call(&self, idx: usize, name: &str) -> bool {
        self.tokens[idx].is_punct('.')
            && self.tokens.get(idx + 1).is_some_and(|t| t.is_ident(name))
            && self.tokens.get(idx + 2).is_some_and(|t| t.is_punct('('))
    }

    /// Emit a finding at token `idx` unless the token sits in test code,
    /// the rule is waived for that line, or configured off.
    fn fire(&mut self, rule: &str, idx: usize, message: String, note: &str) {
        let Some(tok) = self.tokens.get(idx) else { return };
        if self.in_test(idx) || self.allowed(rule, tok.span.line) {
            return;
        }
        self.push_raw(rule, tok.span.line, tok.span.col, message, note);
    }

    fn push_raw(&mut self, rule: &str, line: u32, col: u32, message: String, note: &str) {
        let Some(level) = self.cfg.level(rule) else { return };
        let mut d = Diagnostic::new(rule, level, self.path, line, col, message);
        if !note.is_empty() {
            d = d.with_note(note);
        }
        self.findings.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/cdg.rs";
    const DET: &str = "crates/core/src/simulation.rs";
    const CAST: &str = "crates/te/src/mcf.rs";

    fn rules_of(path: &str, src: &str) -> Vec<String> {
        let cfg = Config::default();
        scan_file(path, src, &cfg).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unwrap_in_lib_fires_with_span() {
        let cfg = Config::default();
        let d = scan_file(LIB, "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n", &cfg);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "panic/unwrap");
        assert_eq!((d[0].line, d[0].col), (2, 7));
    }

    #[test]
    fn unwrap_or_and_strings_do_not_fire() {
        assert!(rules_of(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
        assert!(rules_of(LIB, "fn f() -> &'static str { \".unwrap() panic!()\" }").is_empty());
    }

    #[test]
    fn panic_macros_fire_only_in_lib_scope() {
        let src = "fn f() { panic!(\"boom\") }";
        assert_eq!(rules_of(LIB, src), vec!["panic/panic-macro"]);
        assert!(rules_of("crates/bench/src/bin/table2.rs", src).is_empty());
        assert!(rules_of("crates/core/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(rules_of(LIB, src).is_empty());
        let live = "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(LIB, live), vec!["panic/unwrap"]);
    }

    #[test]
    fn wall_clock_and_rng_fire_everywhere() {
        assert_eq!(
            rules_of(LIB, "fn f() { let t = std::time::Instant::now(); }"),
            vec!["determinism/wall-clock"]
        );
        assert_eq!(
            rules_of("crates/bench/src/lib.rs", "fn f() { let mut r = thread_rng(); }"),
            vec!["determinism/unseeded-rng"]
        );
    }

    #[test]
    fn hash_iter_only_on_det_paths() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        assert_eq!(rules_of(DET, src), vec!["determinism/hash-iter", "determinism/hash-iter"]);
        assert!(rules_of(LIB, src).is_empty());
    }

    #[test]
    fn narrowing_casts_only_on_cast_paths() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(rules_of(CAST, src), vec!["casts/narrowing"]);
        assert!(rules_of(LIB, src).is_empty());
        assert!(rules_of(CAST, "fn f(x: u32) -> u64 { x as u64 }").is_empty());
    }

    #[test]
    fn trailing_allow_waives_one_line() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    \
                   x.unwrap() // smn-lint: allow(panic/unwrap) -- invariant: seeded above\n}\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(LIB, src), vec!["panic/unwrap"]);
    }

    #[test]
    fn standalone_allow_covers_next_item() {
        let src = "// smn-lint: allow(panic/expect) -- join only fails on poisoned threads\n\
                   fn f(x: Option<u8>) -> u8 {\n    x.expect(\"joined\")\n}\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"later\") }\n";
        assert_eq!(rules_of(LIB, src), vec!["panic/expect"]);
    }

    #[test]
    fn inner_doc_allow_covers_whole_file() {
        let src = "//! smn-lint: allow(determinism/wall-clock) -- bench timing is wall time\n\
                   fn a() { let t = Instant::now(); }\nfn b() { let t = Instant::now(); }\n";
        assert!(rules_of(LIB, src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_waives_nothing() {
        let src = "// smn-lint: allow(panic/unwrap)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let mut rules = rules_of(LIB, src);
        rules.sort();
        assert_eq!(rules, vec!["annotation/missing-reason", "panic/unwrap"]);
    }

    #[test]
    fn allow_of_unknown_rule_is_a_finding() {
        let src = "// smn-lint: allow(panic/bogus) -- hm\nfn f() {}\n";
        assert_eq!(rules_of(LIB, src), vec!["annotation/unknown-rule"]);
    }

    #[test]
    fn unreadable_crates_dir_is_reported_not_skipped() {
        // A root whose `crates` entry is a plain file: read_dir fails, and
        // the failure must surface as a finding instead of an empty clean
        // scan.
        let root = std::env::temp_dir().join("smn-lint-unreadable-dir-test");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create test root");
        std::fs::write(root.join("crates"), b"not a directory").expect("write blocker file");
        let (findings, scanned) = scan_workspace(&root, &Config::default());
        let _ = std::fs::remove_dir_all(&root);
        assert_eq!(scanned, 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "source/unparsed");
        assert!(findings[0].message.contains("cannot read directory"), "{}", findings[0].message);
        assert_eq!(findings[0].file, "crates");
    }
}
