//! JSON span location: map a path like `graph.edges[3].dst` back to the
//! `line:col` where that value starts in the source text.
//!
//! The vendored `serde_json` parses into a span-less [`serde::Value`], so
//! artifact diagnostics re-walk the raw text along the already-validated
//! path. The walker only needs to *skip* well-formed JSON, never interpret
//! it; on any malformed input it returns `None` and the diagnostic falls
//! back to a file-level span.

use std::fmt;

/// One step of a JSON path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Object member by key.
    Key(String),
    /// Array element by index.
    Idx(usize),
}

impl Step {
    /// Key step from anything stringly.
    pub fn key(k: impl Into<String>) -> Self {
        Step::Key(k.into())
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Key(k) => write!(f, ".{k}"),
            Step::Idx(i) => write!(f, "[{i}]"),
        }
    }
}

/// Render a path as `root.graph.edges[3].dst` for messages.
#[must_use]
pub fn render_path(path: &[Step]) -> String {
    let mut out = String::from("$");
    for s in path {
        out.push_str(&s.to_string());
    }
    out
}

/// `(line, col)` (1-based) where the value addressed by `path` starts in
/// `src`, or `None` when the path does not resolve.
#[must_use]
pub fn locate(src: &str, path: &[Step]) -> Option<(u32, u32)> {
    let mut w = Walker { chars: src.chars().collect(), pos: 0, line: 1, col: 1 };
    w.walk(path)
}

struct Walker {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Walker {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.bump();
        }
    }

    fn eat(&mut self, c: char) -> Option<()> {
        self.skip_ws();
        (self.peek() == Some(c)).then(|| {
            self.bump();
        })
    }

    /// Consume a string literal, returning its unescaped content.
    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Some(out),
                '\\' => {
                    // Escapes only need length-accurate handling here; the
                    // content is used for key comparison, so decode the
                    // simple ones and keep \u escapes verbatim.
                    match self.bump()? {
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            out.push('\\');
                            out.push('u');
                            for _ in 0..4 {
                                out.push(self.bump()?);
                            }
                        }
                        c => out.push(c),
                    }
                }
                c => out.push(c),
            }
        }
    }

    /// Skip one complete JSON value of any shape.
    fn skip_value(&mut self) -> Option<()> {
        self.skip_ws();
        match self.peek()? {
            '"' => {
                self.string()?;
            }
            '{' => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.bump();
                    return Some(());
                }
                loop {
                    self.string()?;
                    self.eat(':')?;
                    self.skip_value()?;
                    self.skip_ws();
                    match self.bump()? {
                        ',' => self.skip_ws(),
                        '}' => return Some(()),
                        _ => return None,
                    }
                }
            }
            '[' => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.bump();
                    return Some(());
                }
                loop {
                    self.skip_value()?;
                    self.skip_ws();
                    match self.bump()? {
                        ',' => {}
                        ']' => return Some(()),
                        _ => return None,
                    }
                }
            }
            _ => {
                // Scalar: number / true / false / null.
                while self
                    .peek()
                    .is_some_and(|c| !c.is_whitespace() && !matches!(c, ',' | ']' | '}'))
                {
                    self.bump();
                }
            }
        }
        Some(())
    }

    fn walk(&mut self, path: &[Step]) -> Option<(u32, u32)> {
        self.skip_ws();
        let Some(step) = path.first() else {
            return Some((self.line, self.col));
        };
        match step {
            Step::Key(wanted) => {
                self.eat('{')?;
                self.skip_ws();
                if self.peek() == Some('}') {
                    return None;
                }
                loop {
                    let key = self.string()?;
                    self.eat(':')?;
                    if key == *wanted {
                        return self.walk(&path[1..]);
                    }
                    self.skip_value()?;
                    self.skip_ws();
                    match self.bump()? {
                        ',' => self.skip_ws(),
                        _ => return None,
                    }
                }
            }
            Step::Idx(wanted) => {
                self.eat('[')?;
                self.skip_ws();
                if self.peek() == Some(']') {
                    return None;
                }
                let mut i = 0usize;
                loop {
                    if i == *wanted {
                        return self.walk(&path[1..]);
                    }
                    self.skip_value()?;
                    self.skip_ws();
                    match self.bump()? {
                        ',' => i += 1,
                        _ => return None,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "kind": "cdg",
  "graph": {
    "nodes": [1, 2, 3],
    "edges": [
      {"src": 0, "dst": 9}
    ]
  }
}"#;

    #[test]
    fn locates_nested_members() {
        let p = vec![Step::key("graph"), Step::key("edges"), Step::Idx(0), Step::key("dst")];
        assert_eq!(locate(DOC, &p), Some((6, 25)));
        assert_eq!(locate(DOC, &[Step::key("kind")]), Some((2, 11)));
        assert_eq!(
            locate(DOC, &[Step::key("graph"), Step::key("nodes"), Step::Idx(2)]),
            Some((4, 21))
        );
    }

    #[test]
    fn missing_path_is_none() {
        assert!(locate(DOC, &[Step::key("nope")]).is_none());
        assert!(locate(DOC, &[Step::key("graph"), Step::key("nodes"), Step::Idx(9)]).is_none());
    }

    #[test]
    fn strings_with_escapes_and_brackets_do_not_confuse_the_walker() {
        let doc = r#"{"a": "}] \" tricky", "b": [10, {"c": "[,"}, 30]}"#;
        assert_eq!(locate(doc, &[Step::key("b"), Step::Idx(2)]), Some((1, 46)));
    }

    #[test]
    fn renders_paths() {
        let p = vec![Step::key("faults"), Step::Idx(3), Step::key("team")];
        assert_eq!(render_path(&p), "$.faults[3].team");
    }
}
