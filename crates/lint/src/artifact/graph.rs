//! Structural view over a serialized [`smn_topology::graph::DiGraph`].
//!
//! The wire shape (produced by the workspace serde derives) is
//! `{"nodes": [{"payload": …, "out_edges": […], "in_edges": […]}, …],
//!   "edges": [{"src": n, "dst": n, "payload": …}, …]}` and the name-indexed
//! wrappers (`FineDepGraph`, `CoarseDepGraph`, `Wan`) add a
//! `"name_index": [[name, id], …]` pair list. This module decodes that
//! shape without validating it, then checks referential integrity: edge
//! endpoints in range, adjacency lists consistent with the edge table, the
//! name index bijective with the node table.

use serde::Value;

use super::locate::Step;
use super::Checker;

/// A decoded (but unvalidated) serialized graph.
pub struct GraphView<'a> {
    /// Node payload values, in id order.
    pub payloads: Vec<&'a Value>,
    /// Per node: (out edge ids, in edge ids) as serialized.
    pub adjacency: Vec<(Vec<u64>, Vec<u64>)>,
    /// Edge records `(src, dst, payload)`, in id order.
    pub edges: Vec<(u64, u64, &'a Value)>,
}

fn u64_list(v: Option<&Value>) -> Option<Vec<u64>> {
    match v? {
        Value::Seq(items) => items
            .iter()
            .map(|x| match x {
                Value::U64(n) => Some(*n),
                Value::I64(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

fn u64_of(v: Option<&Value>) -> Option<u64> {
    match v? {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

impl<'a> GraphView<'a> {
    /// Decode a serialized `DiGraph` from the value at `base`; on a shape
    /// mismatch, emit `artifact/unreadable` and return `None`.
    pub fn decode(ck: &mut Checker<'_>, base: &[Step], v: &'a Value) -> Option<Self> {
        let fail = |ck: &mut Checker<'_>, what: &str| {
            ck.emit(
                "artifact/unreadable",
                base.to_vec(),
                format!("not a serialized graph: {what}"),
                "",
            );
            None::<Self>
        };
        let Some(Value::Seq(nodes)) = v.get("nodes") else {
            return fail(ck, "missing `nodes` array");
        };
        let Some(Value::Seq(edges)) = v.get("edges") else {
            return fail(ck, "missing `edges` array");
        };
        let mut payloads = Vec::with_capacity(nodes.len());
        let mut adjacency = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let (Some(p), Some(out), Some(inn)) =
                (n.get("payload"), u64_list(n.get("out_edges")), u64_list(n.get("in_edges")))
            else {
                return fail(ck, &format!("node {i} lacks payload/out_edges/in_edges"));
            };
            payloads.push(p);
            adjacency.push((out, inn));
        }
        let mut edge_recs = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let (Some(src), Some(dst), Some(p)) =
                (u64_of(e.get("src")), u64_of(e.get("dst")), e.get("payload"))
            else {
                return fail(ck, &format!("edge {i} lacks src/dst/payload"));
            };
            edge_recs.push((src, dst, p));
        }
        Some(Self { payloads, adjacency, edges: edge_recs })
    }

    /// Referential integrity: endpoints in range, adjacency lists pointing
    /// at real edges with matching endpoints.
    pub fn check_integrity(&self, ck: &mut Checker<'_>, base: &[Step]) {
        let n = self.payloads.len() as u64;
        let m = self.edges.len() as u64;
        for (i, &(src, dst, _)) in self.edges.iter().enumerate() {
            for (field, end) in [("src", src), ("dst", dst)] {
                if end >= n {
                    ck.emit(
                        "artifact/dangling-edge",
                        ck.path(base, &[Step::key("edges"), Step::Idx(i), Step::key(field)]),
                        format!("edge {i} {field} references node {end}, but only {n} nodes exist"),
                        "every edge endpoint must name an existing node",
                    );
                }
            }
        }
        for (i, (out, inn)) in self.adjacency.iter().enumerate() {
            for (field, list, pick) in [("out_edges", out, 0usize), ("in_edges", inn, 1usize)] {
                for (j, &eid) in list.iter().enumerate() {
                    let path = ck.path(
                        base,
                        &[Step::key("nodes"), Step::Idx(i), Step::key(field), Step::Idx(j)],
                    );
                    if eid >= m {
                        ck.emit(
                            "artifact/dangling-edge",
                            path,
                            format!(
                                "node {i} {field} references edge {eid}, but only {m} edges exist"
                            ),
                            "",
                        );
                        continue;
                    }
                    let endpoint = if pick == 0 {
                        self.edges[eid as usize].0
                    } else {
                        self.edges[eid as usize].1
                    };
                    if endpoint != i as u64 {
                        ck.emit(
                            "artifact/dangling-edge",
                            path,
                            format!(
                                "node {i} {field} lists edge {eid}, whose endpoint is node {endpoint}"
                            ),
                            "adjacency lists must agree with the edge table",
                        );
                    }
                }
            }
        }
    }

    /// Payload field `name` of node `id`, when it is a string.
    #[must_use]
    pub fn node_name(&self, id: usize) -> Option<&'a str> {
        match self.payloads.get(id)?.get("name")? {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Check a `name_index` pair list against the node table: every entry
    /// must point at a node of that exact name, every named node must be
    /// indexed, and names must be unique. `base` addresses the serialized
    /// graph (`…/graph`); `wrapper` addresses its parent object, where the
    /// `name_index` key lives.
    pub fn check_name_index(
        &self,
        ck: &mut Checker<'_>,
        base: &[Step],
        wrapper: &[Step],
        index: Option<&Value>,
    ) {
        // Duplicate payload names are a defect independent of the index.
        let mut seen: Vec<&str> = Vec::new();
        for i in 0..self.payloads.len() {
            let Some(name) = self.node_name(i) else { continue };
            if seen.contains(&name) {
                ck.emit(
                    "artifact/duplicate-id",
                    ck.path(base, &[Step::key("nodes"), Step::Idx(i), Step::key("payload")]),
                    format!("duplicate name `{name}` (node {i})"),
                    "names key cross-artifact references and must be unique",
                );
            }
            seen.push(name);
        }
        let Some(Value::Seq(entries)) = index else { return };
        let mut indexed: Vec<&str> = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            let pair = match entry {
                Value::Seq(p) if p.len() == 2 => p,
                _ => continue,
            };
            let (Value::Str(name), Some(id)) = (&pair[0], u64_of(Some(&pair[1]))) else {
                continue;
            };
            indexed.push(name.as_str());
            let actual = self.node_name(id as usize);
            if actual != Some(name.as_str()) {
                ck.emit(
                    "artifact/name-index",
                    ck.path(wrapper, &[Step::key("name_index"), Step::Idx(i)]),
                    match actual {
                        Some(other) => format!(
                            "name index maps `{name}` to node {id}, which is named `{other}`"
                        ),
                        None => format!("name index maps `{name}` to nonexistent node {id}"),
                    },
                    "rebuild the index from the node table",
                );
            }
        }
        for i in 0..self.payloads.len() {
            let Some(name) = self.node_name(i) else { continue };
            if !indexed.contains(&name) {
                ck.emit(
                    "artifact/name-index",
                    ck.path(base, &[Step::key("nodes"), Step::Idx(i), Step::key("payload")]),
                    format!("node {i} `{name}` is missing from the name index"),
                    "rebuild the index from the node table",
                );
            }
        }
    }
}
