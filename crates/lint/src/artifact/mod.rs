//! The artifact engine: static validation of serialized SMN artifacts.
//!
//! Artifacts are JSON envelopes dispatched on a top-level `"kind"`:
//!
//! - `"cdg"` — `{kind, fine: FineDepGraph, coarse?: CoarseDepGraph}`.
//!   Referential integrity of both graphs, name-index consistency,
//!   L1→L3→L7 layer-order on hosting edges, team-ownership consistency
//!   between the fine components and their coarse supernodes.
//! - `"topology"` — `{kind, wan: Wan, optical?: OpticalLayer, srlgs?: [Srlg]}`.
//!   Graph integrity, link-attribute sanity, wavelength span references,
//!   SRLG membership pointing at real links that really ride the span.
//! - `"fault-campaign"` — `{kind, components: [{name, team}], faults: [FaultSpec]}`.
//!   Target/team consistency, severity ranges, unique ids, and taxonomy
//!   coverage of every [`FaultKind::ALL`] member.
//! - `"coarsening"` — `{kind, fine_nodes, node_map, members}`.
//!   The partition must be total, disjoint, in-range, with no empty
//!   supernode and a node_map that agrees with the member lists.
//! - `"stack"` — `{kind, layers, wavelength_count, link_count,
//!   component_count, l1_l3, l3_l7}`: a serialized unified layer stack.
//!   Layers must appear in strict L1 → L3 → L7 order, each cross-layer
//!   map must have one row per upper-layer element, and no row may
//!   reference an element beyond the declared lower-layer population
//!   (no dangling cross-layer refs).
//! - `"remediation-plan"` — `{kind, components: [name], link_count,
//!   wavelength_count, actions: [{incident_id, layer, action:
//!   RemediationAction}]}`: a serialized smn-heal remediation plan.
//!   Every action must target a declared component / in-range link or
//!   wavelength, carry the layer its action kind actually operates on,
//!   and use a plan-unique incident id.
//! - `"coverage-report"` — `{kind, campaign, campaign_seed, n_faults,
//!   total_cells, reachable, covered, unreachable, ratio, cells:
//!   [{kind, layer, locus, rung, count, status}]}`: an smn-coverage
//!   fault-lattice report. Every cell must name a real fault kind,
//!   layer, locus bucket, and degradation rung, appear at most once,
//!   and carry a hit count consistent with its status; the summary
//!   tallies must agree with the rows they summarize.
//! - `"bench-report"` — `{kind, schema, bench, seed, scale, revision,
//!   metrics, attrs, phases}`: a unified perf-trajectory snapshot
//!   (`smn_perf::BenchReport`). The schema version must be the one the
//!   workspace emits, the topology scale must be a known sweep point,
//!   metric names / attr names / phase paths must be unique, metric
//!   values finite, and every wall-time aggregate a non-negative finite
//!   millisecond count (NaN arrives as the string `"nan"` on the wire).
//! - `"delta-journal"` — `{kind, schema, scale, seed, node_count,
//!   components, reconcile_every, ticks}`: the audited record of an
//!   incremental streaming session (`smn_core::stream::DeltaJournal`).
//!   Tick indices must be strictly increasing, every pair reference must
//!   stay below the declared node count, every dependency endpoint must
//!   name a component known by its tick (initial set plus prior or
//!   same-tick additions), and every reconciled tick must carry its
//!   16-hex-digit reconciliation hash.
//! - `"callgraph"` — `{kind, schema, functions, edges, unresolved,
//!   counts}`: the canonical call-graph artifact `smn-lint --deep`
//!   emits. Functions must be strictly sorted by id (sortedness is the
//!   byte-stability contract), edges by `(caller, callee, line)` and
//!   unresolved sites by `(caller, line, name)`; every node index in an
//!   edge or candidate list must fall inside the function population;
//!   the `counts` block must agree with the arrays it summarizes.
//!
//! Every check first gates through the *real* workspace serde types
//! ([`FineDepGraph`], [`Wan`], [`Srlg`], [`FaultSpec`], …) so the checker
//! can never drift from the wire format the code actually produces; the
//! structural walks then run on the raw [`Value`] tree, where private
//! fields like `name_index` are still visible. Spans come from re-walking
//! the source text with [`locate`], since the vendored JSON parser keeps
//! no spans.

pub mod graph;
pub mod locate;

use std::path::Path;

use serde::{Deserialize, Serialize, Value};
use smn_depgraph::coarse::CoarseDepGraph;
use smn_depgraph::fine::FineDepGraph;
use smn_heal::RemediationAction;
use smn_incident::faults::{FaultKind, FaultSpec};
use smn_te::srlg::Srlg;
use smn_topology::layer1::OpticalLayer;
use smn_topology::layer3::Wan;
use smn_topology::stack::LayerId;

use crate::diag::{Diagnostic, Level};
use graph::GraphView;
use locate::{locate, render_path, Step};

/// Shared emit context for one artifact file.
pub struct Checker<'a> {
    file: &'a str,
    src: &'a str,
    /// Findings accumulated so far.
    pub findings: Vec<Diagnostic>,
}

impl<'a> Checker<'a> {
    /// Concatenate a base path with a tail.
    #[must_use]
    pub fn path(&self, base: &[Step], tail: &[Step]) -> Vec<Step> {
        base.iter().chain(tail.iter()).cloned().collect()
    }

    /// Emit a deny finding at the location of `path` in the source text
    /// (file-level span when the path cannot be located).
    pub fn emit(&mut self, rule: &str, path: Vec<Step>, message: impl Into<String>, note: &str) {
        let (line, col) = locate(self.src, &path).unwrap_or((0, 0));
        let message = if path.is_empty() {
            message.into()
        } else {
            format!("{} [{}]", message.into(), render_path(&path))
        };
        let mut d = Diagnostic::new(rule, Level::Deny, self.file, line, col, message);
        if !note.is_empty() {
            d = d.with_note(note);
        }
        self.findings.push(d);
    }
}

/// Check every `*.json` under `dir` (recursively, in sorted order),
/// reporting paths relative to `root`. Returns the findings and the number
/// of artifact files checked.
#[must_use]
pub fn check_dir(root: &Path, dir: &Path) -> (Vec<Diagnostic>, usize) {
    let mut files = Vec::new();
    let mut dir_errors = Vec::new();
    collect_json(dir, &mut files, &mut dir_errors);
    files.sort();
    let mut findings = Vec::new();
    // Same discipline as the source engine: an unreadable directory is a
    // finding, never a silently shorter scan.
    for (bad_dir, err) in dir_errors {
        let rel = bad_dir
            .strip_prefix(root)
            .unwrap_or(&bad_dir)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        findings.push(Diagnostic::new(
            "artifact/unreadable",
            Level::Deny,
            &rel,
            0,
            0,
            format!("cannot read artifact directory: {err}"),
        ));
    }
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        match std::fs::read_to_string(path) {
            Ok(src) => findings.extend(check_str(&rel, &src)),
            Err(e) => findings.push(Diagnostic::new(
                "artifact/unreadable",
                Level::Deny,
                &rel,
                0,
                0,
                format!("cannot read artifact: {e}"),
            )),
        }
    }
    (findings, files.len())
}

fn collect_json(
    dir: &Path,
    out: &mut Vec<std::path::PathBuf>,
    errors: &mut Vec<(std::path::PathBuf, String)>,
) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            errors.push((dir.to_path_buf(), e.to_string()));
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_json(&path, out, errors);
        } else if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
}

/// Check one artifact given its workspace-relative name and source text.
#[must_use]
pub fn check_str(file: &str, src: &str) -> Vec<Diagnostic> {
    let mut ck = Checker { file, src, findings: Vec::new() };
    match serde_json::from_str::<Value>(src) {
        Err(e) => {
            ck.emit("artifact/unreadable", vec![], format!("invalid JSON: {e}"), "");
        }
        Ok(v) => match v.get("kind") {
            Some(Value::Str(kind)) => match kind.as_str() {
                "cdg" => check_cdg(&mut ck, &v),
                "topology" => check_topology(&mut ck, &v),
                "fault-campaign" => check_campaign(&mut ck, &v),
                "coarsening" => check_coarsening(&mut ck, &v),
                "stack" => check_stack(&mut ck, &v),
                "remediation-plan" => check_remediation_plan(&mut ck, &v),
                "coverage-report" => check_coverage_report(&mut ck, &v),
                "callgraph" => check_callgraph(&mut ck, &v),
                "bench-report" => check_bench_report(&mut ck, &v),
                "delta-journal" => check_delta_journal(&mut ck, &v),
                other => ck.emit(
                    "artifact/unknown-kind",
                    vec![Step::key("kind")],
                    format!("unknown artifact kind `{other}`"),
                    "expected one of: cdg, topology, fault-campaign, coarsening, \
                     stack, remediation-plan, coverage-report, callgraph, bench-report, \
                     delta-journal",
                ),
            },
            _ => ck.emit(
                "artifact/unknown-kind",
                vec![],
                "artifact envelope lacks a string `kind` field",
                "expected one of: cdg, topology, fault-campaign, coarsening, \
                 stack, remediation-plan, coverage-report, callgraph, bench-report, \
                 delta-journal",
            ),
        },
    }
    ck.findings
}

/// Present-and-non-null accessor for optional envelope members.
fn optional<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v.get(key) {
        None | Some(Value::Null) => None,
        Some(x) => Some(x),
    }
}

fn f64_of(v: Option<&Value>) -> Option<f64> {
    match v? {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        // The vendored serde encodes non-finite floats as strings.
        Value::Str(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => None,
    }
}

/// Integer accessor: declared counts and ids serialize as JSON integers.
fn u64_of(v: Option<&Value>) -> Option<u64> {
    match v? {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn str_of(v: Option<&Value>) -> Option<&str> {
    match v? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn u64_seq(v: Option<&Value>) -> Vec<u64> {
    match v {
        Some(Value::Seq(items)) => items
            .iter()
            .filter_map(|x| match x {
                Value::U64(n) => Some(*n),
                Value::I64(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

// ---------------------------------------------------------------- cdg ----

/// L1→L7 stack order; hosting must point *down* the stack (a component on
/// a higher layer is hosted by one on a strictly lower layer). Monitoring
/// sits above everything it observes.
fn layer_rank(payload: &Value) -> Option<u32> {
    match str_of(payload.get("layer"))? {
        "Physical" => Some(0),
        "Network" => Some(1),
        "Infrastructure" => Some(2),
        "Platform" => Some(3),
        "Application" => Some(4),
        "Monitoring" => Some(5),
        _ => None,
    }
}

fn check_cdg(ck: &mut Checker<'_>, v: &Value) {
    let Some(fine_v) = optional(v, "fine") else {
        ck.emit("artifact/unreadable", vec![], "cdg artifact lacks `fine`", "");
        return;
    };
    if let Err(e) = FineDepGraph::from_value(fine_v) {
        ck.emit(
            "artifact/unreadable",
            vec![Step::key("fine")],
            format!("does not deserialize as a FineDepGraph: {e}"),
            "",
        );
        return;
    }
    let base = [Step::key("fine"), Step::key("graph")];
    let Some(graph_v) = fine_v.get("graph") else { return };
    let Some(fine) = GraphView::decode(ck, &base, graph_v) else { return };
    fine.check_integrity(ck, &base);
    fine.check_name_index(ck, &base, &[Step::key("fine")], fine_v.get("name_index"));

    // Layer-order: every Hosting edge `src depends-on dst` must have the
    // host (dst) on a strictly lower layer than the hosted component.
    for (i, &(src, dst, payload)) in fine.edges.iter().enumerate() {
        if str_of(Some(payload)) != Some("Hosting") {
            continue;
        }
        let ranks = (
            fine.payloads.get(src as usize).and_then(|p| layer_rank(p)),
            fine.payloads.get(dst as usize).and_then(|p| layer_rank(p)),
        );
        if let (Some(rs), Some(rd)) = ranks {
            if rs <= rd {
                let sn = fine.node_name(src as usize).unwrap_or("?");
                let dn = fine.node_name(dst as usize).unwrap_or("?");
                ck.emit(
                    "artifact/layer-order",
                    ck.path(&base, &[Step::key("edges"), Step::Idx(i)]),
                    format!(
                        "hosting edge `{sn}` -> `{dn}` does not descend the stack \
                         (host must sit on a strictly lower layer)"
                    ),
                    "L1->L3->L7 consistency: Physical < Network < Infrastructure \
                     < Platform < Application < Monitoring",
                );
            }
        }
    }

    // Every component must carry a team (the L7 coarsening key).
    let mut fine_team_sizes: Vec<(String, usize)> = Vec::new();
    for (i, payload) in fine.payloads.iter().enumerate() {
        let team = str_of(payload.get("team")).unwrap_or("");
        if team.is_empty() {
            let name = fine.node_name(i).unwrap_or("?");
            ck.emit(
                "artifact/missing-team",
                ck.path(&base, &[Step::key("nodes"), Step::Idx(i), Step::key("payload")]),
                format!("component `{name}` has no owning team"),
                "teams are the coarsening partition; an unowned component cannot be coarsened",
            );
            continue;
        }
        match fine_team_sizes.iter_mut().find(|(t, _)| t == team) {
            Some((_, n)) => *n += 1,
            None => fine_team_sizes.push((team.to_string(), 1)),
        }
    }

    let Some(coarse_v) = optional(v, "coarse") else { return };
    if let Err(e) = CoarseDepGraph::from_value(coarse_v) {
        ck.emit(
            "artifact/unreadable",
            vec![Step::key("coarse")],
            format!("does not deserialize as a CoarseDepGraph: {e}"),
            "",
        );
        return;
    }
    let cbase = [Step::key("coarse"), Step::key("graph")];
    let Some(cgraph_v) = coarse_v.get("graph") else { return };
    let Some(coarse) = GraphView::decode(ck, &cbase, cgraph_v) else { return };
    coarse.check_integrity(ck, &cbase);
    coarse.check_name_index(ck, &cbase, &[Step::key("coarse")], coarse_v.get("name_index"));

    // L7 mapping consistency: every fine team appears as a coarse node and
    // a recorded component_count matches the fine population.
    for (team, fine_count) in &fine_team_sizes {
        let Some(ci) = (0..coarse.payloads.len()).find(|&i| coarse.node_name(i) == Some(team))
        else {
            ck.emit(
                "artifact/missing-team",
                vec![Step::key("coarse")],
                format!("team `{team}` owns {fine_count} fine component(s) but has no coarse node"),
                "the coarse graph must cover every team in the fine graph",
            );
            continue;
        };
        let recorded = f64_of(coarse.payloads[ci].get("component_count"));
        if let Some(rec) = recorded {
            if rec > 0.0 && rec != *fine_count as f64 {
                ck.emit(
                    "artifact/team-count",
                    ck.path(
                        &cbase,
                        &[
                            Step::key("nodes"),
                            Step::Idx(ci),
                            Step::key("payload"),
                            Step::key("component_count"),
                        ],
                    ),
                    format!(
                        "coarse node `{team}` records {rec} component(s), \
                         but the fine graph has {fine_count}"
                    ),
                    "",
                );
            }
        }
    }
}

// ----------------------------------------------------------- topology ----

fn check_topology(ck: &mut Checker<'_>, v: &Value) {
    let Some(wan_v) = optional(v, "wan") else {
        ck.emit("artifact/unreadable", vec![], "topology artifact lacks `wan`", "");
        return;
    };
    if let Err(e) = Wan::from_value(wan_v) {
        ck.emit(
            "artifact/unreadable",
            vec![Step::key("wan")],
            format!("does not deserialize as a Wan: {e}"),
            "",
        );
        return;
    }
    let base = [Step::key("wan"), Step::key("graph")];
    let Some(graph_v) = wan_v.get("graph") else { return };
    let Some(wan) = GraphView::decode(ck, &base, graph_v) else { return };
    wan.check_integrity(ck, &base);
    wan.check_name_index(ck, &base, &[Step::key("wan")], wan_v.get("name_index"));

    for (i, &(_, _, attrs)) in wan.edges.iter().enumerate() {
        let capacity = f64_of(attrs.get("capacity_gbps"));
        if !capacity.is_some_and(|c| c.is_finite() && c > 0.0) {
            ck.emit(
                "artifact/invalid-attr",
                ck.path(
                    &base,
                    &[
                        Step::key("edges"),
                        Step::Idx(i),
                        Step::key("payload"),
                        Step::key("capacity_gbps"),
                    ],
                ),
                format!("link {i} capacity must be finite and positive, got {capacity:?}"),
                "",
            );
        }
        let distance = f64_of(attrs.get("distance_km"));
        if !distance.is_some_and(|d| d.is_finite() && d >= 0.0) {
            ck.emit(
                "artifact/invalid-attr",
                ck.path(
                    &base,
                    &[
                        Step::key("edges"),
                        Step::Idx(i),
                        Step::key("payload"),
                        Step::key("distance_km"),
                    ],
                ),
                format!("link {i} distance must be finite and non-negative, got {distance:?}"),
                "",
            );
        }
    }
    let link_count = wan.edges.len() as u64;

    // Optical layer: wavelengths reference real spans; the carries table
    // maps each wavelength to real L3 links.
    let optical_v = optional(v, "optical");
    let mut span_count = None;
    let mut wavelength_spans: Vec<Vec<u64>> = Vec::new();
    let mut carries: Vec<Vec<u64>> = Vec::new();
    if let Some(optical_v) = optical_v {
        if let Err(e) = OpticalLayer::from_value(optical_v) {
            ck.emit(
                "artifact/unreadable",
                vec![Step::key("optical")],
                format!("does not deserialize as an OpticalLayer: {e}"),
                "",
            );
            return;
        }
        let spans = match optical_v.get("spans") {
            Some(Value::Seq(s)) => s.len() as u64,
            _ => 0,
        };
        span_count = Some(spans);
        if let Some(Value::Seq(wls)) = optical_v.get("wavelengths") {
            for (i, wl) in wls.iter().enumerate() {
                let refs = u64_seq(wl.get("spans"));
                for (j, &sid) in refs.iter().enumerate() {
                    if sid >= spans {
                        ck.emit(
                            "artifact/unknown-span",
                            vec![
                                Step::key("optical"),
                                Step::key("wavelengths"),
                                Step::Idx(i),
                                Step::key("spans"),
                                Step::Idx(j),
                            ],
                            format!(
                                "wavelength {i} rides span {sid}, but only {spans} spans exist"
                            ),
                            "",
                        );
                    }
                }
                wavelength_spans.push(refs);
            }
        }
        if let Some(Value::Seq(rows)) = optical_v.get("carries") {
            for (i, row) in rows.iter().enumerate() {
                let refs = u64_seq(Some(row));
                for (j, &lid) in refs.iter().enumerate() {
                    if lid >= link_count {
                        ck.emit(
                            "artifact/dangling-link-ref",
                            vec![
                                Step::key("optical"),
                                Step::key("carries"),
                                Step::Idx(i),
                                Step::Idx(j),
                            ],
                            format!(
                                "wavelength {i} carries link {lid}, \
                                 but the WAN has only {link_count} links"
                            ),
                            "",
                        );
                    }
                }
                carries.push(refs);
            }
        }
    }

    // SRLGs: groups of L3 links sharing one physical span.
    let Some(srlgs_v) = optional(v, "srlgs") else { return };
    let Value::Seq(srlgs) = srlgs_v else {
        ck.emit("artifact/unreadable", vec![Step::key("srlgs")], "`srlgs` is not an array", "");
        return;
    };
    for (i, srlg_v) in srlgs.iter().enumerate() {
        if let Err(e) = Srlg::from_value(srlg_v) {
            ck.emit(
                "artifact/unreadable",
                vec![Step::key("srlgs"), Step::Idx(i)],
                format!("does not deserialize as an Srlg: {e}"),
                "",
            );
            continue;
        }
        let span = f64_of(srlg_v.get("span")).unwrap_or(-1.0) as i64;
        if let Some(spans) = span_count {
            if span < 0 || span as u64 >= spans {
                ck.emit(
                    "artifact/unknown-span",
                    vec![Step::key("srlgs"), Step::Idx(i), Step::key("span")],
                    format!("SRLG {i} names span {span}, but only {spans} spans exist"),
                    "",
                );
                continue;
            }
        }
        let links = u64_seq(srlg_v.get("links"));
        if links.len() < 2 {
            ck.emit(
                "artifact/srlg-too-small",
                vec![Step::key("srlgs"), Step::Idx(i), Step::key("links")],
                format!("SRLG {i} groups {} link(s); a risk group needs at least 2", links.len()),
                "single-link groups carry no shared-risk information",
            );
        }
        // Which links actually ride this span, per the optical carries map.
        let riders: Option<Vec<u64>> = span_count.map(|_| {
            let mut out = Vec::new();
            for (w, wspans) in wavelength_spans.iter().enumerate() {
                if wspans.contains(&(span as u64)) {
                    if let Some(row) = carries.get(w) {
                        out.extend(row.iter().copied());
                    }
                }
            }
            out
        });
        for (j, &lid) in links.iter().enumerate() {
            if lid >= link_count {
                ck.emit(
                    "artifact/dangling-link-ref",
                    vec![Step::key("srlgs"), Step::Idx(i), Step::key("links"), Step::Idx(j)],
                    format!("SRLG {i} lists link {lid}, but the WAN has only {link_count} links"),
                    "",
                );
            } else if let Some(riders) = &riders {
                if !riders.contains(&lid) {
                    ck.emit(
                        "artifact/orphan-srlg",
                        vec![Step::key("srlgs"), Step::Idx(i), Step::key("links"), Step::Idx(j)],
                        format!(
                            "SRLG {i} claims link {lid} rides span {span}, \
                             but no wavelength over that span carries it"
                        ),
                        "SRLG membership must be derivable from the optical carries map",
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------- fault campaign ----

fn kind_name(k: FaultKind) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        other => format!("{other:?}"),
    }
}

fn check_campaign(ck: &mut Checker<'_>, v: &Value) {
    let Some(Value::Seq(components)) = v.get("components") else {
        ck.emit("artifact/unreadable", vec![], "campaign lacks a `components` array", "");
        return;
    };
    // name -> team, for target/ownership checks.
    let mut owners: Vec<(&str, &str)> = Vec::new();
    for (i, c) in components.iter().enumerate() {
        let (Some(name), Some(team)) = (str_of(c.get("name")), str_of(c.get("team"))) else {
            ck.emit(
                "artifact/unreadable",
                vec![Step::key("components"), Step::Idx(i)],
                format!("component {i} lacks string `name`/`team`"),
                "",
            );
            continue;
        };
        if owners.iter().any(|&(n, _)| n == name) {
            ck.emit(
                "artifact/duplicate-id",
                vec![Step::key("components"), Step::Idx(i), Step::key("name")],
                format!("duplicate component name `{name}`"),
                "",
            );
        }
        owners.push((name, team));
    }

    let Some(Value::Seq(faults)) = v.get("faults") else {
        ck.emit("artifact/unreadable", vec![], "campaign lacks a `faults` array", "");
        return;
    };
    let mut seen_ids: Vec<u64> = Vec::new();
    let mut seen_kinds: Vec<FaultKind> = Vec::new();
    for (i, f_v) in faults.iter().enumerate() {
        let fault = match FaultSpec::from_value(f_v) {
            Ok(f) => f,
            Err(e) => {
                ck.emit(
                    "artifact/unreadable",
                    vec![Step::key("faults"), Step::Idx(i)],
                    format!("does not deserialize as a FaultSpec: {e}"),
                    "",
                );
                continue;
            }
        };
        if seen_ids.contains(&fault.id) {
            ck.emit(
                "artifact/duplicate-id",
                vec![Step::key("faults"), Step::Idx(i), Step::key("id")],
                format!("duplicate fault id {}", fault.id),
                "fault ids key ground-truth labels and must be campaign-unique",
            );
        }
        seen_ids.push(fault.id);
        if !seen_kinds.contains(&fault.kind) {
            seen_kinds.push(fault.kind);
        }
        if !(fault.severity.is_finite() && fault.severity > 0.0 && fault.severity <= 1.0) {
            ck.emit(
                "artifact/invalid-severity",
                vec![Step::key("faults"), Step::Idx(i), Step::key("severity")],
                format!("fault {} severity {} is outside (0, 1]", fault.id, fault.severity),
                "",
            );
        }
        match owners.iter().find(|&&(n, _)| n == fault.target) {
            None => {
                ck.emit(
                    "artifact/unknown-target",
                    vec![Step::key("faults"), Step::Idx(i), Step::key("target")],
                    format!(
                        "fault {} targets `{}`, not a declared component",
                        fault.id, fault.target
                    ),
                    "",
                );
            }
            Some(&(_, team)) if team != fault.team => {
                ck.emit(
                    "artifact/wrong-team",
                    vec![Step::key("faults"), Step::Idx(i), Step::key("team")],
                    format!(
                        "fault {} blames team `{}`, but `{}` is owned by `{team}`",
                        fault.id, fault.team, fault.target
                    ),
                    "the ground-truth team must be the owner of the target component",
                );
            }
            Some(_) => {}
        }
    }

    let missing: Vec<String> =
        FaultKind::ALL.iter().filter(|k| !seen_kinds.contains(k)).map(|&k| kind_name(k)).collect();
    if !missing.is_empty() && !faults.is_empty() {
        ck.emit(
            "artifact/taxonomy-gap",
            vec![Step::key("faults")],
            format!("campaign exercises no fault of kind(s): {}", missing.join(", ")),
            "a campaign must cover the full fault taxonomy (FaultKind::ALL)",
        );
    }

    // Generator extension: topology-locus annotations (`loci` +
    // `link_count`) tie faults to the WAN link whose failure produces
    // them. Every annotation must name a declared fault and a link
    // inside the declared population.
    let link_count = u64_of(v.get("link_count"));
    let Some(Value::Seq(loci)) = optional(v, "loci") else { return };
    for (i, entry) in loci.iter().enumerate() {
        match u64_of(entry.get("fault")) {
            None => ck.emit(
                "artifact/unreadable",
                vec![Step::key("loci"), Step::Idx(i)],
                format!("locus {i} lacks an integer `fault`"),
                "",
            ),
            Some(id) if !seen_ids.contains(&id) => ck.emit(
                "artifact/unknown-fault-ref",
                vec![Step::key("loci"), Step::Idx(i), Step::key("fault")],
                format!("locus {i} annotates fault {id}, not a fault of this campaign"),
                "locus annotations bind campaign faults to WAN links",
            ),
            Some(_) => {}
        }
        match (u64_of(entry.get("link")), link_count) {
            (None, _) => ck.emit(
                "artifact/unreadable",
                vec![Step::key("loci"), Step::Idx(i)],
                format!("locus {i} lacks an integer `link`"),
                "",
            ),
            (Some(link), Some(n)) if link >= n => ck.emit(
                "artifact/dangling-link-ref",
                vec![Step::key("loci"), Step::Idx(i), Step::key("link")],
                format!("locus {i} names link {link}, but the campaign declares {n} link(s)"),
                "",
            ),
            _ => {}
        }
    }
}

// ----------------------------------------------------- coverage report ----

/// Locus-bucket names of the smn-coverage lattice (kept literal: smn-lint
/// must stay dependency-free of the crate whose artifacts it validates).
const LOCUS_NAMES: &[&str] =
    &["none", "srlg-submarine", "srlg-terrestrial", "high-degree", "low-degree"];
/// Controller degradation rungs, full sight to blind.
const RUNG_NAMES: &[&str] = &["full", "probes-only", "alerts-only", "skipped"];
/// Per-cell report statuses.
const STATUS_NAMES: &[&str] = &["covered", "uncovered", "unexpected"];

/// Validate one `cells[i]` row of a coverage report. Returns
/// `Some((is_reachable, is_covered))` when the row is structurally sound.
fn check_coverage_cell(ck: &mut Checker<'_>, i: usize, cell: &Value) -> Option<(bool, bool)> {
    let base = [Step::key("cells"), Step::Idx(i)];
    let mut ok = true;
    if cell.get("kind").is_none_or(|k| FaultKind::from_value(k).is_err()) {
        ck.emit(
            "artifact/unknown-cell",
            ck.path(&base, &[Step::key("kind")]),
            format!("cell {i} does not name a FaultKind"),
            "",
        );
        ok = false;
    }
    if str_of(cell.get("layer")).and_then(LayerId::parse).is_none() {
        ck.emit(
            "artifact/unknown-cell",
            ck.path(&base, &[Step::key("layer")]),
            format!("cell {i} does not name a stack layer"),
            "expected L1, L3, or L7",
        );
        ok = false;
    }
    if !str_of(cell.get("locus")).is_some_and(|l| LOCUS_NAMES.contains(&l)) {
        ck.emit(
            "artifact/unknown-cell",
            ck.path(&base, &[Step::key("locus")]),
            format!("cell {i} does not name a topology-locus bucket"),
            "expected one of: none, srlg-submarine, srlg-terrestrial, high-degree, low-degree",
        );
        ok = false;
    }
    if !str_of(cell.get("rung")).is_some_and(|r| RUNG_NAMES.contains(&r)) {
        ck.emit(
            "artifact/unknown-cell",
            ck.path(&base, &[Step::key("rung")]),
            format!("cell {i} does not name a degradation rung"),
            "expected one of: full, probes-only, alerts-only, skipped",
        );
        ok = false;
    }
    let status = str_of(cell.get("status"));
    if !status.is_some_and(|s| STATUS_NAMES.contains(&s)) {
        ck.emit(
            "artifact/unknown-cell",
            ck.path(&base, &[Step::key("status")]),
            format!("cell {i} does not carry a status"),
            "expected one of: covered, uncovered, unexpected",
        );
        ok = false;
    }
    let Some(count) = u64_of(cell.get("count")) else {
        ck.emit(
            "artifact/unknown-cell",
            ck.path(&base, &[Step::key("count")]),
            format!("cell {i} lacks an integer hit count"),
            "",
        );
        return None;
    };
    if !ok {
        return None;
    }
    let status = status.unwrap_or("");
    // Status must agree with the evidence: a covered or unexpected cell
    // was exercised at least once, an uncovered one never.
    let consistent = match status {
        "uncovered" => count == 0,
        _ => count > 0,
    };
    if !consistent {
        ck.emit(
            "artifact/coverage-mismatch",
            ck.path(&base, &[Step::key("count")]),
            format!("cell {i} has status `{status}` but a hit count of {count}"),
            "covered/unexpected cells need count > 0; uncovered cells need count == 0",
        );
    }
    Some((status != "unexpected", status == "covered"))
}

/// Validate a serialized smn-coverage report: every cell row names a real
/// lattice coordinate, rows are report-unique, per-row status agrees with
/// the hit count, and the summary tallies (`covered`, `reachable`,
/// `total_cells`, `ratio`) agree with the rows they summarize.
#[allow(clippy::cast_precision_loss)] // cell tallies stay far below 2^52
fn check_coverage_report(ck: &mut Checker<'_>, v: &Value) {
    let count = |key: &str| u64_of(v.get(key));
    let (Some(total), Some(reachable), Some(covered), Some(unreachable)) =
        (count("total_cells"), count("reachable"), count("covered"), count("unreachable"))
    else {
        ck.emit(
            "artifact/unreadable",
            vec![],
            "coverage report lacks integer total_cells/reachable/covered/unreachable",
            "the lattice tallies are required to validate the cell rows",
        );
        return;
    };
    let Some(ratio) = f64_of(v.get("ratio")) else {
        ck.emit("artifact/unreadable", vec![], "coverage report lacks a numeric `ratio`", "");
        return;
    };
    let Some(Value::Seq(cells)) = v.get("cells") else {
        ck.emit("artifact/unreadable", vec![], "coverage report lacks a `cells` array", "");
        return;
    };

    if total != reachable + unreachable {
        ck.emit(
            "artifact/coverage-mismatch",
            vec![Step::key("total_cells")],
            format!(
                "total_cells is {total}, but reachable {reachable} + unreachable {unreachable} \
                 = {}",
                reachable + unreachable
            ),
            "the unreachable shell is the product lattice minus the reachable cells",
        );
    }

    let mut seen: Vec<(String, String, String, String)> = Vec::new();
    let mut tallied = (0u64, 0u64); // (reachable rows, covered rows)
    let mut rows_sound = true;
    for (i, cell) in cells.iter().enumerate() {
        let key = (
            str_of(cell.get("kind")).unwrap_or("").to_string(),
            str_of(cell.get("layer")).unwrap_or("").to_string(),
            str_of(cell.get("locus")).unwrap_or("").to_string(),
            str_of(cell.get("rung")).unwrap_or("").to_string(),
        );
        if seen.contains(&key) {
            ck.emit(
                "artifact/duplicate-id",
                vec![Step::key("cells"), Step::Idx(i)],
                format!("duplicate cell {}/{}/{}/{}", key.0, key.1, key.2, key.3),
                "each lattice cell appears at most once per report",
            );
        }
        seen.push(key);
        match check_coverage_cell(ck, i, cell) {
            Some((is_reachable, is_covered)) => {
                tallied.0 += u64::from(is_reachable);
                tallied.1 += u64::from(is_covered);
            }
            None => rows_sound = false,
        }
    }

    // Cross-check the summary tallies only over structurally sound rows;
    // a malformed row already carries its own finding.
    if rows_sound {
        if tallied.0 != reachable {
            ck.emit(
                "artifact/coverage-mismatch",
                vec![Step::key("reachable")],
                format!(
                    "report declares {reachable} reachable cell(s), \
                     but lists {} covered/uncovered row(s)",
                    tallied.0
                ),
                "every reachable cell gets one row, covered or uncovered",
            );
        }
        if tallied.1 != covered {
            ck.emit(
                "artifact/coverage-mismatch",
                vec![Step::key("covered")],
                format!(
                    "report declares {covered} covered cell(s), but lists {} row(s) \
                     with status `covered`",
                    tallied.1
                ),
                "",
            );
        }
        let expected = if reachable == 0 { 0.0 } else { covered as f64 / reachable as f64 };
        if (ratio - expected).abs() > 1e-9 {
            ck.emit(
                "artifact/coverage-mismatch",
                vec![Step::key("ratio")],
                format!("ratio is {ratio}, but covered/reachable = {expected}"),
                "",
            );
        }
    }
}

// ------------------------------------------------------- bench-report ----

fn check_bench_report(ck: &mut Checker<'_>, v: &Value) {
    // Gate through the real schema type, so the checker can never drift
    // from what the emitters serialize.
    let report = match smn_perf::BenchReport::from_value(v) {
        Ok(r) => r,
        Err(e) => {
            ck.emit(
                "artifact/unreadable",
                vec![],
                format!("does not deserialize as a bench report: {e}"),
                "expected {kind, schema, bench, seed, scale, revision, metrics, attrs, phases}",
            );
            return;
        }
    };

    if report.schema != smn_perf::report::BENCH_REPORT_SCHEMA {
        ck.emit(
            "artifact/bench-schema",
            vec![Step::key("schema")],
            format!(
                "schema version {} is not the supported version {}",
                report.schema,
                smn_perf::report::BENCH_REPORT_SCHEMA
            ),
            "re-record the snapshot with the current emitters; the schema \
             version only moves when emitters and checker move together",
        );
    }
    if !smn_perf::report::KNOWN_SCALES.contains(&report.scale.as_str()) {
        ck.emit(
            "artifact/bench-scale",
            vec![Step::key("scale")],
            format!("unknown topology scale `{}`", report.scale),
            "expected one of: small, 300, 1000, 3000",
        );
    }

    let mut seen = std::collections::BTreeSet::new();
    for (i, m) in report.metrics.iter().enumerate() {
        if !seen.insert(format!("m/{}", m.name)) {
            ck.emit(
                "artifact/duplicate-id",
                vec![Step::key("metrics"), Step::Idx(i)],
                format!("duplicate metric `{}`", m.name),
                "metric names are unique per report; the regression gate indexes by name",
            );
        }
        if !m.value.is_finite() {
            ck.emit(
                "artifact/negative-timing",
                vec![Step::key("metrics"), Step::Idx(i)],
                format!("metric `{}` has non-finite value {}", m.name, m.value),
                "deterministic metrics gate strictly and must be finite",
            );
        }
    }
    for (i, a) in report.attrs.iter().enumerate() {
        if !seen.insert(format!("a/{}", a.name)) {
            ck.emit(
                "artifact/duplicate-id",
                vec![Step::key("attrs"), Step::Idx(i)],
                format!("duplicate attr `{}`", a.name),
                "attr names are unique per report",
            );
        }
    }
    for (i, p) in report.phases.iter().enumerate() {
        if !seen.insert(format!("p/{}", p.path)) {
            ck.emit(
                "artifact/duplicate-id",
                vec![Step::key("phases"), Step::Idx(i)],
                format!("duplicate phase path `{}`", p.path),
                "each span-tree path aggregates into exactly one phase row",
            );
        }
        for (field, val) in
            [("total_ms", p.total_ms), ("mean_ms", p.mean_ms), ("worst_ms", p.worst_ms)]
        {
            if !val.is_finite() || val < 0.0 {
                ck.emit(
                    "artifact/negative-timing",
                    vec![Step::key("phases"), Step::Idx(i), Step::key(field)],
                    format!("phase `{}` has invalid {field}: {val}", p.path),
                    "wall aggregates are non-negative finite milliseconds",
                );
            }
        }
    }
}

// --------------------------------------------------------- coarsening ----

/// The serialized shape of a coarsening partition (mirrors
#[allow(clippy::too_many_lines)] // one rule block per journal invariant
fn check_delta_journal(ck: &mut Checker<'_>, v: &Value) {
    // Gate through the real schema type, so the checker can never drift
    // from what `smn stream --journal` serializes.
    let journal = match smn_core::stream::DeltaJournal::from_value(v) {
        Ok(j) => j,
        Err(e) => {
            ck.emit(
                "artifact/unreadable",
                vec![],
                format!("does not deserialize as a delta journal: {e}"),
                "expected {kind, schema, scale, seed, node_count, components, \
                 reconcile_every, ticks}",
            );
            return;
        }
    };

    if journal.schema != smn_core::stream::DELTA_JOURNAL_SCHEMA {
        ck.emit(
            "artifact/journal-schema",
            vec![Step::key("schema")],
            format!(
                "schema version {} is not the supported version {}",
                journal.schema,
                smn_core::stream::DELTA_JOURNAL_SCHEMA
            ),
            "re-record the journal with the current streaming loop; the schema \
             version only moves when emitter and checker move together",
        );
    }

    // Components known so far: the initial fine-graph population plus
    // everything added by already-checked ticks.
    let mut known: std::collections::BTreeSet<&str> =
        journal.components.iter().map(String::as_str).collect();
    let mut prev_tick: Option<u64> = None;
    for (i, t) in journal.ticks.iter().enumerate() {
        let base = vec![Step::key("ticks"), Step::Idx(i)];
        if prev_tick.is_some_and(|p| t.tick <= p) {
            ck.emit(
                "artifact/journal-tick-order",
                ck.path(&base, &[Step::key("tick")]),
                format!(
                    "tick {} does not advance past the preceding tick {}",
                    t.tick,
                    prev_tick.unwrap_or_default()
                ),
                "deltas apply in strictly increasing tick order; a replayed or \
                 reordered journal would diverge from the stream it records",
            );
        }
        prev_tick = Some(t.tick);

        for (j, &(src, dst)) in t.pairs.iter().enumerate() {
            for node in [src, dst] {
                if u64::from(node) >= journal.node_count {
                    ck.emit(
                        "artifact/journal-dangling-pair",
                        ck.path(&base, &[Step::key("pairs"), Step::Idx(j)]),
                        format!(
                            "pair references node {node} beyond the declared \
                             node_count {}",
                            journal.node_count
                        ),
                        "telemetry pairs index WAN datacenters; an out-of-range \
                         index means the journal and topology disagree",
                    );
                    break;
                }
            }
        }

        // Same-tick additions are visible to this tick's dependencies
        // (components apply before dependencies in `GraphDelta`).
        for name in &t.added_components {
            known.insert(name.as_str());
        }
        for (j, (src, dst)) in t.added_dependencies.iter().enumerate() {
            for end in [src, dst] {
                if !known.contains(end.as_str()) {
                    ck.emit(
                        "artifact/journal-dangling-component",
                        ck.path(&base, &[Step::key("added_dependencies"), Step::Idx(j)]),
                        format!("dependency endpoint `{end}` names an unknown component"),
                        "endpoints must be in the initial component set or added by \
                         a prior or same-tick delta",
                    );
                    break;
                }
            }
        }

        let hash_ok = t
            .reconcile_hash
            .as_deref()
            .is_some_and(|h| h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()));
        if t.reconciled && !hash_ok {
            ck.emit(
                "artifact/journal-missing-hash",
                ck.path(&base, &[Step::key("reconcile_hash")]),
                match t.reconcile_hash.as_deref() {
                    None => format!("tick {} reconciled without a reconciliation hash", t.tick),
                    Some(h) => {
                        format!("tick {} carries a malformed reconciliation hash `{h}`", t.tick)
                    }
                },
                "every reconciled tick records the 16-hex-digit fingerprint that \
                 proved incremental/batch byte-identity",
            );
        }
    }
}

/// `smn_topology::graph::Contraction` minus the coarse graph itself, which
/// does not serialize its payload-generic form).
#[derive(Deserialize)]
struct CoarseningSpec {
    fine_nodes: usize,
    node_map: Vec<usize>,
    members: Vec<Vec<usize>>,
}

#[allow(clippy::too_many_lines)] // one rule block per coarsening invariant
fn check_coarsening(ck: &mut Checker<'_>, v: &Value) {
    let spec = match CoarseningSpec::from_value(v) {
        Ok(s) => s,
        Err(e) => {
            ck.emit(
                "artifact/unreadable",
                vec![],
                format!("does not deserialize as a coarsening spec: {e}"),
                "expected {kind, fine_nodes, node_map, members}",
            );
            return;
        }
    };

    // Owner of each fine node per the member lists; usize::MAX = unassigned.
    let mut owner = vec![usize::MAX; spec.fine_nodes];
    for (s, group) in spec.members.iter().enumerate() {
        if group.is_empty() {
            ck.emit(
                "artifact/empty-supernode",
                vec![Step::key("members"), Step::Idx(s)],
                format!("supernode {s} has no members"),
                "every coarse node must absorb at least one fine node",
            );
        }
        for (j, &node) in group.iter().enumerate() {
            if node >= spec.fine_nodes {
                ck.emit(
                    "artifact/dangling-node",
                    vec![Step::key("members"), Step::Idx(s), Step::Idx(j)],
                    format!(
                        "supernode {s} lists fine node {node}, \
                         but only {} fine nodes exist",
                        spec.fine_nodes
                    ),
                    "",
                );
            } else if owner[node] != usize::MAX {
                ck.emit(
                    "artifact/overlapping-partition",
                    vec![Step::key("members"), Step::Idx(s), Step::Idx(j)],
                    format!("fine node {node} belongs to supernodes {} and {s}", owner[node]),
                    "a coarsening is a partition: member lists must be disjoint",
                );
            } else {
                owner[node] = s;
            }
        }
    }

    let unassigned: Vec<usize> = (0..spec.fine_nodes).filter(|&n| owner[n] == usize::MAX).collect();
    if !unassigned.is_empty() {
        let shown: Vec<String> = unassigned.iter().take(8).map(usize::to_string).collect();
        ck.emit(
            "artifact/partition-not-total",
            vec![Step::key("members")],
            format!(
                "{} of {} fine node(s) belong to no supernode: {}{}",
                unassigned.len(),
                spec.fine_nodes,
                shown.join(", "),
                if unassigned.len() > 8 { ", …" } else { "" }
            ),
            "a coarsening is a partition: the member lists must cover every fine node",
        );
    }

    if spec.node_map.len() != spec.fine_nodes {
        ck.emit(
            "artifact/partition-not-total",
            vec![Step::key("node_map")],
            format!(
                "node_map has {} entr(ies) for {} fine node(s)",
                spec.node_map.len(),
                spec.fine_nodes
            ),
            "",
        );
        return;
    }
    for (node, &super_id) in spec.node_map.iter().enumerate() {
        if super_id >= spec.members.len() {
            ck.emit(
                "artifact/partition-mismatch",
                vec![Step::key("node_map"), Step::Idx(node)],
                format!(
                    "node_map sends fine node {node} to supernode {super_id}, \
                     but only {} supernodes exist",
                    spec.members.len()
                ),
                "",
            );
            continue;
        }
        // Only cross-check nodes with a well-defined owner: missing or
        // duplicated membership already produced its own finding above.
        if owner.get(node).copied().unwrap_or(usize::MAX) != usize::MAX && owner[node] != super_id {
            ck.emit(
                "artifact/partition-mismatch",
                vec![Step::key("node_map"), Step::Idx(node)],
                format!(
                    "node_map sends fine node {node} to supernode {super_id}, \
                     but the member lists place it in supernode {}",
                    owner[node]
                ),
                "node_map and members encode the same partition and must agree",
            );
        }
    }
}

// -------------------------------------------------------------- stack ----

/// Validate one cross-layer map of the stack envelope: one row per
/// upper-layer element, every reference within the lower-layer population.
fn check_stack_map(
    ck: &mut Checker<'_>,
    v: &Value,
    key: &str,
    upper: (&str, u64),
    lower: (&str, u64),
) {
    let Some(map_v) = optional(v, key) else {
        ck.emit(
            "artifact/dangling-stack-ref",
            vec![],
            format!("stack artifact lacks `{key}`"),
            "both cross-layer maps (l1_l3, l3_l7) are required",
        );
        return;
    };
    let Value::Seq(rows) = map_v else {
        ck.emit(
            "artifact/dangling-stack-ref",
            vec![Step::key(key)],
            format!("`{key}` is not an array of per-{}-element rows", upper.0),
            "",
        );
        return;
    };
    if rows.len() as u64 != upper.1 {
        ck.emit(
            "artifact/dangling-stack-ref",
            vec![Step::key(key)],
            format!("`{key}` has {} row(s) for {} {} element(s)", rows.len(), upper.1, upper.0),
            "a cross-layer map carries exactly one row per upper-layer element",
        );
    }
    for (i, row) in rows.iter().enumerate() {
        for (j, &ref_idx) in u64_seq(Some(row)).iter().enumerate() {
            if ref_idx >= lower.1 {
                ck.emit(
                    "artifact/dangling-stack-ref",
                    vec![Step::key(key), Step::Idx(i), Step::Idx(j)],
                    format!(
                        "{} {i} maps to {} {ref_idx}, but only {} exist",
                        upper.0, lower.0, lower.1
                    ),
                    "cross-layer references must resolve within the lower layer",
                );
            }
        }
    }
}

fn check_stack(ck: &mut Checker<'_>, v: &Value) {
    // Layer list: strict L1 -> L3 -> L7 descent order, no unknowns.
    match v.get("layers") {
        Some(Value::Seq(layers)) => {
            let expected = ["L1", "L3", "L7"];
            let names: Vec<&str> = layers.iter().filter_map(|l| str_of(Some(l))).collect();
            if names.len() != layers.len() || names != expected {
                ck.emit(
                    "artifact/stack-layer-order",
                    vec![Step::key("layers")],
                    format!("stack layers are {names:?}, expected {expected:?}"),
                    "the unified stack registers exactly L1, L3, L7 in descending-\
                     propagation order",
                );
            }
        }
        _ => ck.emit(
            "artifact/stack-layer-order",
            vec![],
            "stack artifact lacks a `layers` array",
            "expected layers: [\"L1\", \"L3\", \"L7\"]",
        ),
    }

    let count = |key: &str| u64_of(v.get(key));
    let (Some(wavelengths), Some(links), Some(components)) =
        (count("wavelength_count"), count("link_count"), count("component_count"))
    else {
        ck.emit(
            "artifact/unreadable",
            vec![],
            "stack artifact lacks wavelength_count/link_count/component_count",
            "per-layer populations are required to resolve cross-layer refs",
        );
        return;
    };

    check_stack_map(ck, v, "l1_l3", ("wavelength", wavelengths), ("link", links));
    check_stack_map(ck, v, "l3_l7", ("link", links), ("component", components));
}

// --------------------------------------------------- remediation plan ----

/// Validate a serialized smn-heal remediation plan: every action gates
/// through the real [`RemediationAction`] serde type, targets something
/// that exists in the declared world (component name, link index,
/// wavelength index), declares the layer its action kind actually
/// operates on, and carries a plan-unique incident id.
fn check_remediation_plan(ck: &mut Checker<'_>, v: &Value) {
    let Some(Value::Seq(components)) = v.get("components") else {
        ck.emit("artifact/unreadable", vec![], "remediation plan lacks a `components` array", "");
        return;
    };
    let names: Vec<&str> = components.iter().filter_map(|c| str_of(Some(c))).collect();
    if names.len() != components.len() {
        ck.emit(
            "artifact/unreadable",
            vec![Step::key("components")],
            "`components` must be an array of component-name strings",
            "",
        );
        return;
    }
    let link_count = u64_of(v.get("link_count")).unwrap_or(0);
    let wavelength_count = u64_of(v.get("wavelength_count")).unwrap_or(0);

    let Some(Value::Seq(actions)) = v.get("actions") else {
        ck.emit("artifact/unreadable", vec![], "remediation plan lacks an `actions` array", "");
        return;
    };
    let mut seen_ids: Vec<u64> = Vec::new();
    for (i, a_v) in actions.iter().enumerate() {
        check_remediation_action(ck, i, a_v, &names, link_count, wavelength_count, &mut seen_ids);
    }
}

/// Validate one entry of a remediation plan's `actions` array: serde
/// round-trip, plan-unique incident id, declared-vs-actual layer, and
/// target existence in the declared world.
fn check_remediation_action(
    ck: &mut Checker<'_>,
    i: usize,
    a_v: &Value,
    names: &[&str],
    link_count: u64,
    wavelength_count: u64,
    seen_ids: &mut Vec<u64>,
) {
    let base = [Step::key("actions"), Step::Idx(i)];
    let Some(action_v) = optional(a_v, "action") else {
        ck.emit("artifact/unreadable", base.to_vec(), format!("action {i} lacks `action`"), "");
        return;
    };
    let action = match RemediationAction::from_value(action_v) {
        Ok(a) => a,
        Err(e) => {
            ck.emit(
                "artifact/unreadable",
                ck.path(&base, &[Step::key("action")]),
                format!("does not deserialize as a RemediationAction: {e}"),
                "",
            );
            return;
        }
    };

    if let Some(id) = u64_of(a_v.get("incident_id")) {
        if seen_ids.contains(&id) {
            ck.emit(
                "artifact/duplicate-id",
                ck.path(&base, &[Step::key("incident_id")]),
                format!("duplicate incident id {id}"),
                "a plan settles each incident with at most one terminal action",
            );
        }
        seen_ids.push(id);
    }

    // Layer-order validity: the declared layer must be the one the
    // action kind operates on (retune=L1, drain=L3, restart/route=L7).
    let declared = str_of(a_v.get("layer")).unwrap_or("");
    if LayerId::parse(declared) != Some(action.layer()) {
        ck.emit(
            "artifact/layer-order",
            ck.path(&base, &[Step::key("layer")]),
            format!(
                "action {i} ({}) declares layer `{declared}`, but `{}` operates on {}",
                action.kind_name(),
                action.kind_name(),
                action.layer().name()
            ),
            "retune-wavelength acts on L1, drain-link on L3, \
             restart-component and route-to-team on L7",
        );
    }

    // Dangling targets: names against the component list, indices
    // against the declared layer populations.
    match &action {
        RemediationAction::RestartComponent { component } => {
            if !names.contains(&component.as_str()) {
                ck.emit(
                    "artifact/unknown-target",
                    ck.path(&base, &[Step::key("action")]),
                    format!("action {i} restarts `{component}`, not a declared component"),
                    "",
                );
            }
        }
        RemediationAction::DrainLink { link, .. } => {
            if u64::from(link.0) >= link_count {
                ck.emit(
                    "artifact/dangling-link-ref",
                    ck.path(&base, &[Step::key("action")]),
                    format!(
                        "action {i} drains link {}, but the plan declares {link_count} link(s)",
                        link.0
                    ),
                    "",
                );
            }
        }
        RemediationAction::RetuneWavelength { wavelength, .. } => {
            if u64::from(wavelength.0) >= wavelength_count {
                ck.emit(
                    "artifact/dangling-link-ref",
                    ck.path(&base, &[Step::key("action")]),
                    format!(
                        "action {i} retunes wavelength {}, but the plan declares \
                         {wavelength_count} wavelength(s)",
                        wavelength.0
                    ),
                    "",
                );
            }
        }
        RemediationAction::RouteToTeam { .. } => {}
    }
}

// ---------------------------------------------------------- callgraph ----

/// Validate the canonical call-graph artifact `smn-lint --deep` writes
/// (`CallGraph::to_canonical_json`). Three invariant families:
///
/// - **Order** (`artifact/callgraph-order`): functions strictly sorted by
///   id, edges by `(caller, callee, line)`, unresolved sites by
///   `(caller, line, name)`. Sorted output is the byte-stability contract
///   — a shuffled artifact was not produced by the canonical writer.
/// - **References** (`artifact/callgraph-ref`): every caller/callee index
///   and every unresolved candidate must fall inside the function array.
/// - **Counts** (`artifact/callgraph-count`): the `counts` block must
///   agree with the arrays it summarizes.
#[allow(clippy::too_many_lines)] // one block per invariant family
fn check_callgraph(ck: &mut Checker<'_>, v: &Value) {
    match u64_of(v.get("schema")) {
        Some(1) => {}
        other => {
            ck.emit(
                "artifact/unreadable",
                vec![Step::key("schema")],
                format!("callgraph schema {other:?} is not the supported version 1"),
                "",
            );
            return;
        }
    }
    let (Some(Value::Seq(functions)), Some(Value::Seq(edges)), Some(Value::Seq(unresolved))) =
        (v.get("functions"), v.get("edges"), v.get("unresolved"))
    else {
        ck.emit(
            "artifact/unreadable",
            vec![],
            "callgraph lacks functions/edges/unresolved arrays",
            "",
        );
        return;
    };
    let n_fns = functions.len() as u64;

    // Function ids: strictly increasing (sorted, no duplicates).
    let mut prev_id: Option<&str> = None;
    for (i, f) in functions.iter().enumerate() {
        let Some(id) = str_of(f.get("id")) else {
            ck.emit(
                "artifact/unreadable",
                vec![Step::key("functions"), Step::Idx(i), Step::key("id")],
                format!("function {i} lacks a string `id`"),
                "",
            );
            continue;
        };
        if let Some(prev) = prev_id {
            if prev == id {
                ck.emit(
                    "artifact/duplicate-id",
                    vec![Step::key("functions"), Step::Idx(i), Step::key("id")],
                    format!("duplicate function id `{id}`"),
                    "node ids key edges and candidates; the builder suffixes collisions",
                );
            } else if prev > id {
                ck.emit(
                    "artifact/callgraph-order",
                    vec![Step::key("functions"), Step::Idx(i)],
                    format!("function `{id}` sorts before its predecessor `{prev}`"),
                    "the canonical writer sorts functions by id; order is the \
                     byte-stability contract",
                );
            }
        }
        prev_id = Some(id);
    }

    // Edges: [caller, callee, line] triples, in-range, sorted.
    let mut prev_edge: Option<(u64, u64, u64)> = None;
    for (i, e) in edges.iter().enumerate() {
        let key = match e {
            Value::Seq(t) if t.len() == 3 => {
                let triple = (u64_of(t.first()), u64_of(t.get(1)), u64_of(t.get(2)));
                match triple {
                    (Some(a), Some(b), Some(l)) => (a, b, l),
                    _ => {
                        ck.emit(
                            "artifact/unreadable",
                            vec![Step::key("edges"), Step::Idx(i)],
                            format!("edge {i} is not an integer triple"),
                            "expected [caller, callee, line]",
                        );
                        continue;
                    }
                }
            }
            _ => {
                ck.emit(
                    "artifact/unreadable",
                    vec![Step::key("edges"), Step::Idx(i)],
                    format!("edge {i} is not an integer triple"),
                    "expected [caller, callee, line]",
                );
                continue;
            }
        };
        for (role, idx) in [("caller", key.0), ("callee", key.1)] {
            if idx >= n_fns {
                ck.emit(
                    "artifact/callgraph-ref",
                    vec![Step::key("edges"), Step::Idx(i)],
                    format!("edge {i} {role} {idx} is out of range ({n_fns} function(s))"),
                    "",
                );
            }
        }
        if let Some(prev) = prev_edge {
            if prev > key {
                ck.emit(
                    "artifact/callgraph-order",
                    vec![Step::key("edges"), Step::Idx(i)],
                    format!("edge {i} breaks (caller, callee, line) order"),
                    "the canonical writer sorts edges; order is the byte-stability contract",
                );
            }
        }
        prev_edge = Some(key);
    }

    // Unresolved sites: in-range caller + candidates, sorted.
    let mut prev_site: Option<(u64, u64, String)> = None;
    for (i, u) in unresolved.iter().enumerate() {
        let (Some(caller), Some(line), Some(name)) =
            (u64_of(u.get("caller")), u64_of(u.get("line")), str_of(u.get("name")))
        else {
            ck.emit(
                "artifact/unreadable",
                vec![Step::key("unresolved"), Step::Idx(i)],
                format!("unresolved site {i} lacks caller/line/name"),
                "",
            );
            continue;
        };
        if caller >= n_fns {
            ck.emit(
                "artifact/callgraph-ref",
                vec![Step::key("unresolved"), Step::Idx(i), Step::key("caller")],
                format!(
                    "unresolved site {i} caller {caller} is out of range \
                     ({n_fns} function(s))"
                ),
                "",
            );
        }
        for (j, cand) in u64_seq(u.get("candidates")).iter().enumerate() {
            if *cand >= n_fns {
                ck.emit(
                    "artifact/callgraph-ref",
                    vec![
                        Step::key("unresolved"),
                        Step::Idx(i),
                        Step::key("candidates"),
                        Step::Idx(j),
                    ],
                    format!(
                        "unresolved site {i} candidate {cand} is out of range \
                         ({n_fns} function(s))"
                    ),
                    "",
                );
            }
        }
        let key = (caller, line, name.to_string());
        if let Some(prev) = &prev_site {
            if *prev > key {
                ck.emit(
                    "artifact/callgraph-order",
                    vec![Step::key("unresolved"), Step::Idx(i)],
                    format!("unresolved site {i} breaks (caller, line, name) order"),
                    "the canonical writer sorts unresolved sites; order is the \
                     byte-stability contract",
                );
            }
        }
        prev_site = Some(key);
    }

    // Counts block: must summarize the arrays it sits next to.
    let Some(counts) = optional(v, "counts") else {
        ck.emit("artifact/unreadable", vec![], "callgraph lacks a `counts` block", "");
        return;
    };
    for (key, actual) in [
        ("functions", functions.len() as u64),
        ("edges", edges.len() as u64),
        ("unresolved", unresolved.len() as u64),
    ] {
        match u64_of(counts.get(key)) {
            Some(declared) if declared != actual => ck.emit(
                "artifact/callgraph-count",
                vec![Step::key("counts"), Step::key(key)],
                format!("counts.{key} declares {declared}, but the array holds {actual}"),
                "the counts block summarizes the arrays and must agree with them",
            ),
            None => ck.emit(
                "artifact/callgraph-count",
                vec![Step::key("counts")],
                format!("counts lacks an integer `{key}`"),
                "",
            ),
            Some(_) => {}
        }
    }
    if u64_of(counts.get("external")).is_none() {
        ck.emit(
            "artifact/callgraph-count",
            vec![Step::key("counts")],
            "counts lacks an integer `external`",
            "the external tally has no backing array; it is still part of the contract",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kind_is_flagged() {
        let out = check_str("x.json", r#"{"kind": "mystery"}"#);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "artifact/unknown-kind");
        assert_eq!((out[0].line, out[0].col), (1, 10));
    }

    #[test]
    fn malformed_json_is_unreadable() {
        let out = check_str("x.json", "{nope");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "artifact/unreadable");
    }

    #[test]
    fn coarsening_partition_checks() {
        let good =
            r#"{"kind":"coarsening","fine_nodes":3,"node_map":[0,0,1],"members":[[0,1],[2]]}"#;
        assert!(check_str("c.json", good).is_empty());

        let not_total =
            r#"{"kind":"coarsening","fine_nodes":4,"node_map":[0,0,1,1],"members":[[0,1],[2]]}"#;
        let out = check_str("c.json", not_total);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/partition-not-total");

        let overlap =
            r#"{"kind":"coarsening","fine_nodes":3,"node_map":[0,0,1],"members":[[0,1],[1,2]]}"#;
        let out = check_str("c.json", overlap);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/overlapping-partition");

        let empty = r#"{"kind":"coarsening","fine_nodes":2,"node_map":[0,0],"members":[[0,1],[]]}"#;
        let out = check_str("c.json", empty);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/empty-supernode");
    }

    #[test]
    fn remediation_plan_checks() {
        let good = r#"{"kind":"remediation-plan","components":["app-1","db-1"],
            "link_count":4,"wavelength_count":2,"actions":[
            {"incident_id":1,"layer":"L7","action":{"RestartComponent":{"component":"app-1"}}},
            {"incident_id":2,"layer":"L3","action":{"DrainLink":{"link":3,"alternates":2}}},
            {"incident_id":3,"layer":"L7","action":{"RouteToTeam":{"team":"database"}}}]}"#;
        assert!(check_str("p.json", good).is_empty(), "{:?}", check_str("p.json", good));

        // Restart of an undeclared component is a dangling action target.
        let unknown = r#"{"kind":"remediation-plan","components":["app-1"],
            "link_count":1,"wavelength_count":1,"actions":[
            {"incident_id":1,"layer":"L7","action":{"RestartComponent":{"component":"ghost"}}}]}"#;
        let out = check_str("p.json", unknown);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/unknown-target");

        // Link and wavelength indices must fall inside the declared world.
        let dangling = r#"{"kind":"remediation-plan","components":[],
            "link_count":2,"wavelength_count":1,"actions":[
            {"incident_id":1,"layer":"L3","action":{"DrainLink":{"link":2,"alternates":1}}},
            {"incident_id":2,"layer":"L1","action":{"RetuneWavelength":
                {"wavelength":5,"from":"Qam16","to":"Qpsk"}}}]}"#;
        let out = check_str("p.json", dangling);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "artifact/dangling-link-ref"));

        // The declared layer must match the action kind's layer.
        let wrong_layer = r#"{"kind":"remediation-plan","components":["app-1"],
            "link_count":1,"wavelength_count":1,"actions":[
            {"incident_id":1,"layer":"L3","action":{"RestartComponent":{"component":"app-1"}}}]}"#;
        let out = check_str("p.json", wrong_layer);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/layer-order");

        // Incident ids are plan-unique.
        let dup = r#"{"kind":"remediation-plan","components":["app-1"],
            "link_count":1,"wavelength_count":1,"actions":[
            {"incident_id":1,"layer":"L7","action":{"RestartComponent":{"component":"app-1"}}},
            {"incident_id":1,"layer":"L7","action":{"RouteToTeam":{"team":"app"}}}]}"#;
        let out = check_str("p.json", dup);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/duplicate-id");

        // A malformed action gates on the real serde type.
        let bad = r#"{"kind":"remediation-plan","components":[],
            "link_count":0,"wavelength_count":0,"actions":[
            {"incident_id":1,"layer":"L7","action":{"Nuke":{"from":"orbit"}}}]}"#;
        let out = check_str("p.json", bad);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/unreadable");
    }

    #[test]
    fn campaign_locus_checks() {
        let campaign = |loci: &str| {
            format!(
                r#"{{"kind":"fault-campaign",
                "components":[{{"name":"app-1","team":"app"}}],
                "faults":[{{"id":0,"kind":"ServerCrash","target":"app-1",
                    "variant":0,"severity":0.5,"team":"app"}}],
                "link_count":2,"loci":{loci}}}"#
            )
        };
        // A single-kind campaign has a taxonomy gap; in-range loci add
        // nothing on top of it.
        let out = check_str("c.json", &campaign(r#"[{"fault":0,"link":1}]"#));
        assert!(out.iter().all(|d| d.rule == "artifact/taxonomy-gap"), "{out:?}");

        // A locus link beyond the declared population dangles.
        let out = check_str("c.json", &campaign(r#"[{"fault":0,"link":2}]"#));
        assert!(out.iter().any(|d| d.rule == "artifact/dangling-link-ref"), "{out:?}");

        // A locus annotating a fault id the campaign does not declare.
        let out = check_str("c.json", &campaign(r#"[{"fault":9,"link":0}]"#));
        assert!(out.iter().any(|d| d.rule == "artifact/unknown-fault-ref"), "{out:?}");
    }

    #[test]
    fn coverage_report_checks() {
        let report = |covered: u64, ratio: f64, cells: &str| {
            format!(
                r#"{{"kind":"coverage-report","campaign":"generated","campaign_seed":1,
                "n_faults":2,"total_cells":900,"reachable":2,"covered":{covered},
                "unreachable":898,"ratio":{ratio},"cells":{cells}}}"#
            )
        };
        let good_cells = r#"[
            {"kind":"ServerCrash","layer":"L7","locus":"none","rung":"full",
             "count":3,"status":"covered"},
            {"kind":"LinkFlap","layer":"L3","locus":"srlg-submarine","rung":"full",
             "count":0,"status":"uncovered"}]"#;
        let out = check_str("r.json", &report(1, 0.5, good_cells));
        assert!(out.is_empty(), "{out:?}");

        // An unknown fault kind in a cell row.
        let bad_kind = r#"[
            {"kind":"Gremlin","layer":"L7","locus":"none","rung":"full",
             "count":1,"status":"covered"},
            {"kind":"ServerCrash","layer":"L7","locus":"none","rung":"full",
             "count":1,"status":"covered"}]"#;
        let out = check_str("r.json", &report(1, 0.5, bad_kind));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/unknown-cell");

        // A covered cell that was never exercised contradicts its status.
        let uncounted = r#"[
            {"kind":"ServerCrash","layer":"L7","locus":"none","rung":"full",
             "count":0,"status":"covered"},
            {"kind":"LinkFlap","layer":"L3","locus":"none","rung":"full",
             "count":0,"status":"uncovered"}]"#;
        let out = check_str("r.json", &report(1, 0.5, uncounted));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/coverage-mismatch");

        // Summary tallies must agree with the rows: the declared covered
        // count exceeds the covered rows, and the ratio disagrees with
        // covered/reachable.
        let out = check_str("r.json", &report(2, 0.5, good_cells));
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "artifact/coverage-mismatch"));

        // The same cell listed twice is a duplicate.
        let dup = r#"[
            {"kind":"ServerCrash","layer":"L7","locus":"none","rung":"full",
             "count":1,"status":"covered"},
            {"kind":"ServerCrash","layer":"L7","locus":"none","rung":"full",
             "count":1,"status":"covered"}]"#;
        let out = check_str("r.json", &report(2, 1.0, dup));
        assert!(out.iter().any(|d| d.rule == "artifact/duplicate-id"), "{out:?}");
    }

    #[test]
    fn callgraph_checks() {
        let graph = |functions: &str, edges: &str, unresolved: &str, counts: &str| {
            format!(
                r#"{{"kind":"callgraph","schema":1,"functions":{functions},
                "edges":{edges},"unresolved":{unresolved},"counts":{counts}}}"#
            )
        };
        let fns = r#"[{"id":"core::a"},{"id":"core::b"}]"#;
        let good = graph(
            fns,
            "[[0,1,3],[1,0,9]]",
            r#"[{"caller":0,"name":"step","line":4,"candidates":[1]}]"#,
            r#"{"functions":2,"edges":2,"unresolved":1,"external":7}"#,
        );
        assert!(check_str("g.json", &good).is_empty(), "{:?}", check_str("g.json", &good));

        // Functions out of id order were not written by the canonical writer.
        let shuffled = graph(
            r#"[{"id":"core::b"},{"id":"core::a"}]"#,
            "[]",
            "[]",
            r#"{"functions":2,"edges":0,"unresolved":0,"external":0}"#,
        );
        let out = check_str("g.json", &shuffled);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/callgraph-order");

        // A repeated id is a duplicate, not just an order break.
        let dup = graph(
            r#"[{"id":"core::a"},{"id":"core::a"}]"#,
            "[]",
            "[]",
            r#"{"functions":2,"edges":0,"unresolved":0,"external":0}"#,
        );
        let out = check_str("g.json", &dup);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/duplicate-id");

        // Edge endpoints and unresolved candidates must index real nodes.
        let dangling = graph(
            fns,
            "[[0,2,3]]",
            r#"[{"caller":5,"name":"step","line":4,"candidates":[9]}]"#,
            r#"{"functions":2,"edges":1,"unresolved":1,"external":0}"#,
        );
        let out = check_str("g.json", &dangling);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "artifact/callgraph-ref"));

        // Edge order is part of the canonical contract.
        let disordered = graph(
            fns,
            "[[1,0,9],[0,1,3]]",
            "[]",
            r#"{"functions":2,"edges":2,"unresolved":0,"external":0}"#,
        );
        let out = check_str("g.json", &disordered);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/callgraph-order");

        // The counts block must agree with the arrays.
        let miscounted =
            graph(fns, "[]", "[]", r#"{"functions":3,"edges":0,"unresolved":0,"external":0}"#);
        let out = check_str("g.json", &miscounted);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/callgraph-count");

        // A missing external tally is a counts failure, not a pass.
        let no_external = graph(fns, "[]", "[]", r#"{"functions":2,"edges":0,"unresolved":0}"#);
        let out = check_str("g.json", &no_external);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/callgraph-count");

        // An unknown schema version is unreadable, not silently accepted.
        let v2 = good.replace("\"schema\":1", "\"schema\":2");
        let out = check_str("g.json", &v2);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/unreadable");

        // The real canonical writer round-trips clean through the checker.
        let g = crate::graph::build(
            &[(
                "crates/core/src/lib.rs".to_string(),
                "pub fn a() { b(); }\npub fn b() {}\n".to_string(),
            )],
            &crate::config::Config::default(),
        );
        let out = check_str("artifacts/callgraph.json", &g.to_canonical_json());
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stack_checks() {
        let good = r#"{"kind":"stack","layers":["L1","L3","L7"],
            "wavelength_count":3,"link_count":2,"component_count":2,
            "l1_l3":[[0],[0,1],[1]],"l3_l7":[[0,1],[1]]}"#;
        assert!(check_str("s.json", good).is_empty(), "{:?}", check_str("s.json", good));

        // Layers out of propagation order.
        let reversed = r#"{"kind":"stack","layers":["L7","L3","L1"],
            "wavelength_count":1,"link_count":1,"component_count":1,
            "l1_l3":[[0]],"l3_l7":[[0]]}"#;
        let out = check_str("s.json", reversed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/stack-layer-order");

        // An unknown layer name is also an order violation.
        let unknown = r#"{"kind":"stack","layers":["L1","L2","L7"],
            "wavelength_count":1,"link_count":1,"component_count":1,
            "l1_l3":[[0]],"l3_l7":[[0]]}"#;
        let out = check_str("s.json", unknown);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/stack-layer-order");

        // A wavelength referencing a link beyond the declared population.
        let dangling = r#"{"kind":"stack","layers":["L1","L3","L7"],
            "wavelength_count":2,"link_count":2,"component_count":1,
            "l1_l3":[[0],[2]],"l3_l7":[[0],[0]]}"#;
        let out = check_str("s.json", dangling);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/dangling-stack-ref");

        // Row count must equal the upper-layer population.
        let short = r#"{"kind":"stack","layers":["L1","L3","L7"],
            "wavelength_count":3,"link_count":1,"component_count":1,
            "l1_l3":[[0],[0]],"l3_l7":[[0]]}"#;
        let out = check_str("s.json", short);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/dangling-stack-ref");

        // Missing maps and populations are structural failures, not passes.
        let bare = r#"{"kind":"stack","layers":["L1","L3","L7"]}"#;
        let out = check_str("s.json", bare);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "artifact/unreadable");
    }
}
