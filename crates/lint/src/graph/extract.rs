//! Per-file extraction: one lexical pass over a token stream producing the
//! raw facts the workspace call-graph builder resolves.
//!
//! Extraction is deliberately *syntactic*: it records function definitions
//! (with module nesting, impl context, and visibility), call sites (direct,
//! qualified-path, and method calls with their receiver chains), locally
//! visible types (params, simple `let` bindings, struct fields, statics),
//! and the token sites the deep analyses care about (panic sites, wall
//! clock / RNG reads, `thread::scope` extents). All *semantic* judgement —
//! which method call resolves where, which receiver is a lock, which
//! `.iter()` walks a `HashMap` — happens later in [`crate::graph`], where
//! the whole workspace's facts are visible.

use std::collections::BTreeMap;

use syn::{Token, TokenKind};

use crate::scan::{self, Allow};

/// Idents that mean entropy-seeded randomness (mirrors the source engine).
const RNG_IDENTS: &[&str] = &["thread_rng", "ThreadRng", "OsRng", "from_entropy"];

/// Idents that mean wall-clock time wherever they appear.
const WALL_CLOCK_IDENTS: &[&str] = &["SystemTime", "UNIX_EPOCH"];

/// Macro names that abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Macro names that abort on a failed condition (documented-panic APIs).
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Methods whose return type is derivable from the receiver type alone, so
/// a receiver chain may pass *through* them: `self.metrics.lock().inc(..)`
/// types `inc`'s receiver as the `Mutex`'s payload. Recorded in chains as
/// `#name` markers; [`crate::graph`] applies the type transform.
pub const TRANSPARENT_METHODS: &[&str] = &[
    "lock",
    "read",
    "write",
    "unwrap",
    "expect",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "clone",
    "get",
];

/// Iterator adapters whose single-ident closure parameter binds to the
/// iterated chain's element type (`results.iter().map(|r| ..)`).
const ITER_ADAPTERS: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "for_each",
    "find",
    "any",
    "all",
    "position",
    "take_while",
    "skip_while",
    "inspect",
];

/// Keywords that can directly precede `(` or `[` without forming a call or
/// an index expression.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "in", "let",
    "move", "ref", "unsafe", "async", "await", "dyn", "box", "as", "use", "where", "impl", "fn",
    "pub", "mod", "struct", "enum", "trait", "type", "const", "static", "super", "yield",
];

/// The impl (or trait) block a method definition lives in.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplCtx {
    /// Self-type name (last path segment, generics stripped).
    pub ty: String,
    /// Trait name for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub enum RawCallKind {
    /// `foo(...)` — a bare function name.
    Direct(String),
    /// `a::b::foo(...)` — a path; segments in source order.
    Qualified(Vec<String>),
    /// `recv.foo(...)` — a method call. `chain` is the receiver's
    /// field-access chain (e.g. `["self", "tracer"]`) when it is a plain
    /// ident path, `None` when the receiver is a computed expression.
    Method { name: String, chain: Option<Vec<String>> },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct RawCall {
    /// What is being called.
    pub kind: RawCallKind,
    /// Token index of the callee name (ordering key for lock analysis).
    pub tok: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// Token index after which a guard returned by this call would drop:
    /// end of the enclosing statement, or end of the enclosing block when
    /// the result is `let`-bound. Used only for lock-discipline analysis.
    pub held_until: usize,
    /// True when the call happens inside a `spawn(..)` closure that is
    /// itself inside a `thread::scope(..)` extent.
    pub in_scope_spawn: bool,
    /// True when the call happens anywhere inside a `thread::scope(..)`
    /// extent (spawned or not).
    pub in_scope: bool,
}

/// Why a function can abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `assert!` / `assert_eq!` / `assert_ne!`.
    Assert,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `x[i]` slice/array indexing.
    Index,
}

impl PanicKind {
    /// Short human label used in witness chains.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Macro => "panic-family macro",
            PanicKind::Assert => "assert! macro",
            PanicKind::Unwrap => ".unwrap()",
            PanicKind::Expect => ".expect()",
            PanicKind::Index => "slice indexing",
        }
    }
}

/// One potential panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Why it can abort.
    pub kind: PanicKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A determinism-taint source found lexically (receiver-independent kinds
/// only; `hash-iter` and lock/channel sources are derived at resolution).
#[derive(Debug, Clone)]
pub struct RawSource {
    /// Which nondeterminism family.
    pub kind: RawSourceKind,
    /// What was seen (e.g. the ident text).
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// Receiver-independent taint-source families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawSourceKind {
    /// `SystemTime` / `UNIX_EPOCH` / `Instant::now`.
    WallClock,
    /// `thread_rng` / `OsRng` / `from_entropy`.
    UnseededRng,
}

/// A `for _ in <chain>` iteration site (hash-iteration candidate once the
/// receiver's type is known).
#[derive(Debug, Clone)]
pub struct RawForIter {
    /// Receiver chain being iterated.
    pub chain: Vec<String>,
    /// 1-based line.
    pub line: u32,
}

/// One extracted function.
#[derive(Debug, Clone)]
pub struct RawFn {
    /// Bare function name.
    pub name: String,
    /// Inline-module path inside the file (plus enclosing fn names for
    /// nested functions).
    pub modpath: Vec<String>,
    /// The impl/trait block the definition lives in, if any.
    pub impl_ctx: Option<ImplCtx>,
    /// True for bare `pub` (restricted `pub(..)` counts as private).
    pub public: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Normalized return-type text (`Self` resolved to the impl type);
    /// `None` for `()` returns. Lets the builder type `let x = f(..)`.
    pub ret: Option<String>,
    /// Parameter and simple-`let` types: variable name → normalized type
    /// text (e.g. `"Mutex<TracerState>"`); `"self"` maps to the impl type;
    /// closures map to the `"<closure>"` sentinel.
    pub locals: BTreeMap<String, String>,
    /// `let x = <rhs>` bindings whose RHS is a typeable chain: variable
    /// name → receiver chain with `#...` markers (transparent hops,
    /// `#call:f` / `#qcall:path` / `#mcall:m` call results, `#elem`
    /// indexing), typed on demand by the builder. Also holds `if let
    /// Some(x) = <rhs>` bindings (with a trailing `#unwrap`).
    pub chain_lets: BTreeMap<String, Vec<String>>,
    /// `for x in [&]<chain>` bindings: variable name → iterated chain plus
    /// an `#elem` marker (element type of the collection).
    pub elem_lets: BTreeMap<String, Vec<String>>,
    /// Call sites in source order.
    pub calls: Vec<RawCall>,
    /// Potential panic sites.
    pub panics: Vec<PanicSite>,
    /// Receiver-independent taint sources.
    pub sources: Vec<RawSource>,
    /// `for _ in <chain>` iteration sites.
    pub for_iters: Vec<RawForIter>,
    /// True when the body contains a `thread::scope(..)` extent.
    pub has_scope: bool,
}

/// A struct definition's field types.
#[derive(Debug, Clone, Default)]
pub struct RawStruct {
    /// Field name → normalized type text.
    pub fields: BTreeMap<String, String>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    /// Functions in source order (test code excluded).
    pub fns: Vec<RawFn>,
    /// Struct name → fields.
    pub structs: BTreeMap<String, RawStruct>,
    /// `static NAME: Type` items: name → normalized type text.
    pub statics: BTreeMap<String, String>,
    /// Allow annotations (validated rule names only; issues are the source
    /// engine's to report).
    pub allows: Vec<Allow>,
}

/// Extract all facts from one lexed file.
pub fn extract_file(path: &str, tokens: &[Token], known_rule: &dyn Fn(&str) -> bool) -> FileFacts {
    let (allows, _issues) = scan::collect_allows(tokens, known_rule);
    let mut ex = Extractor {
        tokens,
        test_ranges: scan::collect_test_ranges(tokens),
        facts: FileFacts { path: path.to_string(), allows, ..Default::default() },
        scopes: Vec::new(),
        thread_scopes: Vec::new(),
        spawn_extents: Vec::new(),
    };
    ex.collect_thread_scopes();
    ex.run();
    ex.facts
}

/// One entry of the item-scope stack.
#[derive(Debug, Clone)]
enum Scope {
    /// `mod name { .. }` — close token index.
    Mod(String, usize),
    /// `impl .. { .. }` / `trait .. { .. }` — context + close index.
    Impl(ImplCtx, usize),
    /// A function body — index into `facts.fns` + close index.
    Fn(usize, usize),
}

impl Scope {
    fn close(&self) -> usize {
        match self {
            Scope::Mod(_, c) | Scope::Fn(_, c) => *c,
            Scope::Impl(_, c) => *c,
        }
    }
}

struct Extractor<'a> {
    tokens: &'a [Token],
    test_ranges: Vec<(usize, usize)>,
    facts: FileFacts,
    scopes: Vec<Scope>,
    /// `thread::scope(..)` paren extents (inclusive).
    thread_scopes: Vec<(usize, usize)>,
    /// `spawn(..)` paren extents inside thread scopes (inclusive).
    spawn_extents: Vec<(usize, usize)>,
}

impl<'a> Extractor<'a> {
    fn tok(&self, idx: usize) -> Option<&Token> {
        self.tokens.get(idx)
    }

    fn next_code(&self, idx: usize) -> Option<usize> {
        scan::next_code(self.tokens, idx)
    }

    fn prev_code(&self, idx: usize) -> Option<usize> {
        (0..idx).rev().find(|&i| !self.tokens[i].is_comment())
    }

    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= idx && idx <= e)
    }

    fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
        ranges.iter().any(|&(s, e)| s <= idx && idx <= e)
    }

    // ---- thread::scope detection -------------------------------------

    /// Record `thread::scope(..)` paren extents and the `spawn(..)` paren
    /// extents inside them, so call sites can be tagged.
    fn collect_thread_scopes(&mut self) {
        for idx in 0..self.tokens.len() {
            if !self.tokens[idx].is_ident("scope") {
                continue;
            }
            // `thread::scope(` / `std::thread::scope(`.
            let Some(p1) = self.prev_code(idx) else { continue };
            if !self.tokens[p1].is_punct(':') {
                continue;
            }
            let Some(p2) = self.prev_code(p1) else { continue };
            if !self.tokens[p2].is_punct(':') {
                continue;
            }
            let Some(p3) = self.prev_code(p2) else { continue };
            if !self.tokens[p3].is_ident("thread") {
                continue;
            }
            let Some(open) = self.next_code(idx + 1) else { continue };
            if !self.tokens[open].is_punct('(') {
                continue;
            }
            let Some(close) = scan::matching(self.tokens, open, '(', ')') else { continue };
            self.thread_scopes.push((open, close));
        }
        for &(s, e) in &self.thread_scopes.clone() {
            for idx in s..=e {
                if !self.tokens[idx].is_ident("spawn") {
                    continue;
                }
                let Some(open) = self.next_code(idx + 1) else { continue };
                if !self.tokens[open].is_punct('(') {
                    continue;
                }
                if let Some(close) = scan::matching(self.tokens, open, '(', ')') {
                    self.spawn_extents.push((open, close));
                }
            }
        }
    }

    // ---- main walk ----------------------------------------------------

    fn run(&mut self) {
        let mut idx = 0usize;
        while idx < self.tokens.len() {
            // Retire scopes that ended before this token.
            while self.scopes.last().is_some_and(|s| s.close() < idx) {
                self.scopes.pop();
            }
            // Skip test regions entirely: no nodes, no edges, no sites.
            if let Some(&(_, end)) = self.test_ranges.iter().find(|&&(s, e)| s <= idx && idx <= e) {
                idx = end + 1;
                continue;
            }
            let Some(tok) = self.tok(idx) else { break };
            if tok.is_comment() {
                idx += 1;
                continue;
            }

            if tok.is_ident("mod") {
                idx = self.enter_mod(idx);
                continue;
            }
            if tok.is_ident("impl") || tok.is_ident("trait") {
                idx = self.enter_impl(idx);
                continue;
            }
            if tok.is_ident("struct") {
                idx = self.record_struct(idx);
                continue;
            }
            if tok.is_ident("static") {
                idx = self.record_static(idx);
                continue;
            }
            if tok.is_ident("fn") {
                idx = self.enter_fn(idx);
                continue;
            }

            if self.current_fn().is_some() {
                self.body_token(idx);
            }
            idx += 1;
        }
    }

    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(i, _) => Some(*i),
            _ => None,
        })
    }

    fn current_impl(&self) -> Option<&ImplCtx> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Impl(c, _) => Some(c),
            _ => None,
        })
    }

    fn current_modpath(&self) -> Vec<String> {
        let mut path = Vec::new();
        for s in &self.scopes {
            match s {
                Scope::Mod(name, _) => path.push(name.clone()),
                // Nested fns namespace under their parent function.
                Scope::Fn(i, _) => path.push(self.facts.fns[*i].name.clone()),
                Scope::Impl(..) => {}
            }
        }
        path
    }

    // ---- item headers -------------------------------------------------

    /// `mod name { .. }` — push a scope; `mod name;` — skip.
    fn enter_mod(&mut self, idx: usize) -> usize {
        let Some(name_idx) = self.next_code(idx + 1) else { return idx + 1 };
        let name = &self.tokens[name_idx];
        if name.kind != TokenKind::Ident {
            return idx + 1;
        }
        let Some(open) = self.next_code(name_idx + 1) else { return idx + 1 };
        if self.tokens[open].is_punct('{') {
            let close = syn::matching_close(self.tokens, open).unwrap_or(self.tokens.len() - 1);
            self.scopes.push(Scope::Mod(name.text.clone(), close));
        }
        // `mod name;` declares an out-of-line module handled via its own
        // file; nothing to do here.
        open + 1
    }

    /// Index just past a `<...>` group starting at `open` (arrow-aware).
    fn skip_angle_group(&self, open: usize) -> usize {
        let mut angle = 0i64;
        let mut i = open;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !self.prev_is_dash(i) {
                angle -= 1;
                if angle == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.tokens.len()
    }

    /// `impl<G> Trait for Type<..> where .. { .. }` or `trait Name { .. }`.
    fn enter_impl(&mut self, idx: usize) -> usize {
        let is_trait = self.tokens[idx].is_ident("trait");
        // Collect header tokens up to the body `{` (angle-depth aware so
        // `where T: Into<{..}>` style generics can't derail us).
        let mut k = idx + 1;
        // `impl<N, E>` generics belong to the block, not the self-type:
        // skip them so the type-name scan below doesn't stop at their `<`.
        if !is_trait {
            if let Some(g) = self.next_code(k) {
                if self.tokens[g].is_punct('<') {
                    k = self.skip_angle_group(g);
                }
            }
        }
        let mut angle = 0i64;
        let mut header: Vec<usize> = Vec::new();
        while k < self.tokens.len() {
            let t = &self.tokens[k];
            if t.is_comment() {
                k += 1;
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // `->` inside `Fn() -> X` generics: not a closer.
                if !self.prev_is_dash(k) {
                    angle -= 1;
                }
            } else if t.is_punct('{') && angle <= 0 {
                break;
            } else if t.is_punct(';') && angle <= 0 {
                // `impl Foo;`-like degenerate header: skip the item.
                return k + 1;
            }
            header.push(k);
            k += 1;
        }
        if k >= self.tokens.len() {
            return self.tokens.len();
        }
        let open = k;
        let close = syn::matching_close(self.tokens, open).unwrap_or(self.tokens.len() - 1);
        let ctx = if is_trait {
            let ty = header
                .iter()
                .map(|&i| &self.tokens[i])
                .find(|t| t.kind == TokenKind::Ident)
                .map_or_else(|| "_".to_string(), |t| t.text.clone());
            ImplCtx { ty, trait_name: None }
        } else {
            self.parse_impl_header(&header)
        };
        self.scopes.push(Scope::Impl(ctx, close));
        open + 1
    }

    /// True when the code token before `k` is `-` (so `>` at `k` is part
    /// of an `->` arrow, not a generics closer).
    fn prev_is_dash(&self, k: usize) -> bool {
        self.prev_code(k).is_some_and(|p| self.tokens[p].is_punct('-'))
    }

    /// Split an impl header into `(trait, type)` on a depth-0 `for`, then
    /// take each side's last path segment before any generics.
    fn parse_impl_header(&self, header: &[usize]) -> ImplCtx {
        let mut angle = 0i64;
        let mut for_pos: Option<usize> = None;
        for (pos, &i) in header.iter().enumerate() {
            let t = &self.tokens[i];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !self.prev_is_dash(i) {
                angle -= 1;
            } else if angle <= 0 && t.is_ident("for") {
                for_pos = Some(pos);
                break;
            } else if angle <= 0 && t.is_ident("where") {
                break;
            }
        }
        let (trait_part, ty_part): (&[usize], &[usize]) = match for_pos {
            Some(p) => (&header[..p], &header[p + 1..]),
            None => (&[], header),
        };
        let ty = self.last_path_segment(ty_part).unwrap_or_else(|| "_".to_string());
        let trait_name = self.last_path_segment(trait_part);
        ImplCtx { ty, trait_name }
    }

    /// Last identifier of the leading path in `part`, stopping at generics
    /// or a `where` clause: `fmt::Display` → `Display`, `Coarsening<T>` →
    /// `Coarsening`, `&mut Foo` → `Foo`.
    fn last_path_segment(&self, part: &[usize]) -> Option<String> {
        let mut last: Option<String> = None;
        for &i in part {
            let t = &self.tokens[i];
            if t.is_punct('<') || t.is_ident("where") {
                break;
            }
            if t.kind == TokenKind::Ident
                && !["mut", "dyn", "impl", "const"].contains(&t.text.as_str())
            {
                last = Some(t.text.clone());
            }
        }
        last
    }

    /// `struct Name { field: Type, .. }` — record field types; tuple and
    /// unit structs carry no named fields worth tracking.
    fn record_struct(&mut self, idx: usize) -> usize {
        let Some(name_idx) = self.next_code(idx + 1) else { return idx + 1 };
        let name_tok = &self.tokens[name_idx];
        if name_tok.kind != TokenKind::Ident {
            return idx + 1;
        }
        let name = name_tok.text.clone();
        // Find the body `{` (or `;`/`(` for unit/tuple structs).
        let mut k = name_idx + 1;
        let mut angle = 0i64;
        while k < self.tokens.len() {
            let t = &self.tokens[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !self.prev_is_dash(k) {
                angle -= 1;
            } else if angle <= 0 && (t.is_punct(';') || t.is_punct('(')) {
                return scan::item_extent(self.tokens, idx) + 1;
            } else if angle <= 0 && t.is_punct('{') {
                break;
            }
            k += 1;
        }
        let Some(close) = syn::matching_close(self.tokens, k) else { return k + 1 };
        let mut st = RawStruct::default();
        let mut i = k + 1;
        while i < close {
            let t = &self.tokens[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            // Skip attributes on fields.
            if t.is_punct('#') {
                if let Some(open) = self.next_code(i + 1) {
                    if self.tokens[open].is_punct('[') {
                        i = scan::matching(self.tokens, open, '[', ']').unwrap_or(open) + 1;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            // `pub` / `pub(crate)` prefixes.
            if t.is_ident("pub") {
                i = match self.next_code(i + 1) {
                    Some(n) if self.tokens[n].is_punct('(') => {
                        scan::matching(self.tokens, n, '(', ')').unwrap_or(n) + 1
                    }
                    _ => i + 1,
                };
                continue;
            }
            if t.kind == TokenKind::Ident {
                if let Some(colon) = self.next_code(i + 1) {
                    if self.tokens[colon].is_punct(':') {
                        let (ty, after) = self.type_text(colon + 1, close, &[',']);
                        st.fields.insert(t.text.clone(), ty);
                        i = after + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
        self.facts.structs.insert(name, st);
        close + 1
    }

    /// `static NAME: Type = ..;` — record the type for lock naming.
    fn record_static(&mut self, idx: usize) -> usize {
        let mut k = idx + 1;
        if self.next_code(k).is_some_and(|n| self.tokens[n].is_ident("mut")) {
            k = self.next_code(k).map_or(k, |n| n + 1);
        }
        let Some(name_idx) = self.next_code(k) else { return idx + 1 };
        let name_tok = &self.tokens[name_idx];
        if name_tok.kind != TokenKind::Ident {
            return idx + 1;
        }
        let Some(colon) = self.next_code(name_idx + 1) else { return idx + 1 };
        if !self.tokens[colon].is_punct(':') {
            return idx + 1;
        }
        let end = scan::item_extent(self.tokens, idx);
        let (ty, _) = self.type_text(colon + 1, end + 1, &['=', ';']);
        self.facts.statics.insert(name_tok.text.clone(), ty);
        end + 1
    }

    /// Concatenate a type's token texts from `start` until one of `stops`
    /// appears at bracket depth 0 (or `limit` is reached). Returns the
    /// normalized text (refs/lifetimes/`mut`/`dyn`/`impl` stripped at the
    /// front) and the index of the stopping token.
    fn type_text(&self, start: usize, limit: usize, stops: &[char]) -> (String, usize) {
        let mut depth = 0i64;
        let mut out = String::new();
        let mut k = start;
        while k < limit.min(self.tokens.len()) {
            let t = &self.tokens[k];
            if t.is_comment() {
                k += 1;
                continue;
            }
            match t.kind {
                TokenKind::Punct => {
                    let ch = t.text.chars().next().unwrap_or(' ');
                    if depth == 0 && stops.contains(&ch) {
                        break;
                    }
                    match ch {
                        '<' | '(' | '[' => depth += 1,
                        '>' if !self.prev_is_dash(k) => depth -= 1,
                        ')' | ']' => depth -= 1,
                        _ => {}
                    }
                    // Leading `&` refs are not part of the type name.
                    if !(out.is_empty() && ch == '&') {
                        out.push_str(&t.text);
                    }
                }
                TokenKind::Lifetime => {}
                _ => {
                    if out.is_empty() && ["mut", "dyn", "impl"].contains(&t.text.as_str()) {
                        // Skip qualifier prefixes before the type name.
                    } else {
                        out.push_str(&t.text);
                    }
                }
            }
            k += 1;
        }
        (out, k)
    }

    // ---- fn definitions -----------------------------------------------

    /// Parse a `fn` item header, record the function, and push its body
    /// scope so subsequent tokens attribute to it.
    fn enter_fn(&mut self, idx: usize) -> usize {
        let Some(name_idx) = self.next_code(idx + 1) else { return idx + 1 };
        let name_tok = &self.tokens[name_idx];
        if name_tok.kind != TokenKind::Ident {
            return idx + 1;
        }
        let name = name_tok.text.clone();
        let public = self.fn_is_public(idx);
        let line = self.tokens[idx].span.line;

        // Skip generics to the parameter list.
        let mut k = name_idx + 1;
        if let Some(open) = self.next_code(k) {
            if self.tokens[open].is_punct('<') {
                k = self.skip_angle_group(open);
            }
        }
        let Some(popen) = self.next_code(k) else { return idx + 1 };
        if !self.tokens[popen].is_punct('(') {
            return idx + 1;
        }
        let pclose = scan::matching(self.tokens, popen, '(', ')')
            .unwrap_or(self.tokens.len().saturating_sub(1));

        let mut locals = BTreeMap::new();
        if let Some(ctx) = self.current_impl() {
            let ty = ctx.ty.clone();
            self.parse_params(popen, pclose, Some(&ty), &mut locals);
        } else {
            self.parse_params(popen, pclose, None, &mut locals);
        }

        // Body `{` (or `;` for trait-method declarations).
        let mut b = pclose + 1;
        let body_open = loop {
            let Some(n) = self.next_code(b) else { break None };
            let t = &self.tokens[n];
            if t.is_punct('{') {
                break Some(n);
            }
            if t.is_punct(';') {
                break None;
            }
            b = n + 1;
        };

        // Return type (`-> Type`) between the params and the body: lets
        // the builder type `let x = f(..)` bindings through this function.
        let mut ret: Option<String> = None;
        {
            let limit = body_open.unwrap_or_else(|| scan::item_extent(self.tokens, idx));
            let mut j = pclose + 1;
            while j < limit {
                if self.tokens[j].is_punct('-') && self.tok(j + 1).is_some_and(|t| t.is_punct('>'))
                {
                    let start = j + 2;
                    let stop =
                        (start..limit).find(|&w| self.tokens[w].is_ident("where")).unwrap_or(limit);
                    let (ty, _) = self.type_text(start, stop, &['{', ';']);
                    if !ty.is_empty() {
                        ret = Some(match self.current_impl() {
                            Some(ctx) => ty.replace("Self", &ctx.ty),
                            None => ty,
                        });
                    }
                    break;
                }
                j += 1;
            }
        }

        let raw = RawFn {
            name,
            modpath: self.current_modpath(),
            impl_ctx: self.current_impl().cloned(),
            public,
            line,
            ret,
            locals,
            chain_lets: BTreeMap::new(),
            elem_lets: BTreeMap::new(),
            calls: Vec::new(),
            panics: Vec::new(),
            sources: Vec::new(),
            for_iters: Vec::new(),
            has_scope: false,
        };

        match body_open {
            Some(open) => {
                let close = syn::matching_close(self.tokens, open).unwrap_or(self.tokens.len() - 1);
                let fn_idx = self.facts.fns.len();
                self.facts.fns.push(raw);
                if Self::overlaps(&self.thread_scopes, open, close) {
                    self.facts.fns[fn_idx].has_scope = true;
                }
                // Pre-scan the body for simple `let` bindings so receiver
                // types are known regardless of use-before-record order.
                self.collect_lets(fn_idx, open, close);
                self.scopes.push(Scope::Fn(fn_idx, close));
                open + 1
            }
            None => {
                // Bodyless declaration: keep the node (trait methods are
                // call-resolution targets), no body to walk.
                self.facts.fns.push(raw);
                scan::item_extent(self.tokens, idx) + 1
            }
        }
    }

    fn overlaps(ranges: &[(usize, usize)], s: usize, e: usize) -> bool {
        ranges.iter().any(|&(rs, re)| rs <= e && s <= re)
    }

    /// Visibility of the fn at `idx`: walk back over modifier tokens and
    /// accept only a bare `pub` (restricted `pub(..)` is not public API).
    fn fn_is_public(&self, idx: usize) -> bool {
        let mut k = idx;
        while let Some(p) = self.prev_code(k) {
            let t = &self.tokens[p];
            if t.kind == TokenKind::Ident
                && ["const", "unsafe", "async", "extern"].contains(&t.text.as_str())
            {
                k = p;
                continue;
            }
            if t.kind == TokenKind::Str {
                // `extern "C"` ABI string.
                k = p;
                continue;
            }
            if t.is_punct(')') {
                // Could be `pub(crate)`: walk to the opening paren and on.
                let mut depth = 0i64;
                let mut j = p;
                loop {
                    let tj = &self.tokens[j];
                    if tj.is_punct(')') {
                        depth += 1;
                    } else if tj.is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        return false;
                    }
                    j -= 1;
                }
                // `pub(..)` is restricted visibility, and any other
                // paren-terminated prefix is not a visibility at all.
                return false;
            }
            return t.is_ident("pub");
        }
        false
    }

    /// Record `name: Type` params (plus the `self` receiver type).
    fn parse_params(
        &self,
        open: usize,
        close: usize,
        self_ty: Option<&str>,
        locals: &mut BTreeMap<String, String>,
    ) {
        let mut i = open + 1;
        // Split top-level commas (paren/bracket/angle aware).
        let mut depth = 0i64;
        let mut param_start = i;
        let mut boundaries = Vec::new();
        while i < close {
            let t = &self.tokens[i];
            if t.kind == TokenKind::Punct {
                match t.text.chars().next().unwrap_or(' ') {
                    '(' | '[' | '<' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '>' if !self.prev_is_dash(i) => depth -= 1,
                    ',' if depth == 0 => {
                        boundaries.push((param_start, i));
                        param_start = i + 1;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if param_start < close {
            boundaries.push((param_start, close));
        }

        for (s, e) in boundaries {
            let code: Vec<usize> = (s..e).filter(|&i| !self.tokens[i].is_comment()).collect();
            if code.is_empty() {
                continue;
            }
            // Receiver: `self` possibly behind `&`, lifetimes, `mut`.
            if let Some(&self_idx) = code.iter().find(|&&i| self.tokens[i].is_ident("self")) {
                let only_receiver_prefix = code.iter().take_while(|&&i| i != self_idx).all(|&i| {
                    let t = &self.tokens[i];
                    t.is_punct('&') || t.kind == TokenKind::Lifetime || t.is_ident("mut")
                });
                if only_receiver_prefix {
                    if let Some(ty) = self_ty {
                        locals.insert("self".to_string(), ty.to_string());
                    }
                    continue;
                }
            }
            // Simple `name: Type` (skip `mut` prefix; skip destructuring).
            let mut ci = 0usize;
            if self.tokens[code[ci]].is_ident("mut") && code.len() > 1 {
                ci += 1;
            }
            let name_i = code[ci];
            if self.tokens[name_i].kind != TokenKind::Ident {
                continue;
            }
            let Some(&colon_i) = code.get(ci + 1) else { continue };
            if !self.tokens[colon_i].is_punct(':') {
                continue;
            }
            let (ty, _) = self.type_text(colon_i + 1, e, &[',']);
            locals.insert(self.tokens[name_i].text.clone(), ty);
        }
    }

    /// Pre-scan a body for `let [mut] name: Type = ..` and
    /// `let [mut] name = Type::..` bindings.
    fn collect_lets(&mut self, fn_idx: usize, open: usize, close: usize) {
        let mut i = open + 1;
        while i < close {
            if self.in_test(i) || !self.tokens[i].is_ident("let") {
                i += 1;
                continue;
            }
            let Some(mut n) = self.next_code(i + 1) else { break };
            if self.tokens[n].is_ident("mut") {
                match self.next_code(n + 1) {
                    Some(nn) => n = nn,
                    None => break,
                }
            }
            if self.tokens[n].kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            // `if let Some(x) = <rhs> {` / `while let Some(x) = <rhs> {`
            // binds `x` to the Option payload of the RHS chain's type.
            if self.tokens[n].is_ident("Some") {
                if let Some((var, chain)) = self.some_binding(n) {
                    self.facts.fns[fn_idx].chain_lets.entry(var).or_insert(chain);
                }
                i = n + 1;
                continue;
            }
            let var = self.tokens[n].text.clone();
            let Some(after) = self.next_code(n + 1) else { break };
            if self.tokens[after].is_punct(':') {
                let (ty, _) = self.type_text(after + 1, close, &['=', ';']);
                self.facts.fns[fn_idx].locals.entry(var).or_insert(ty);
            } else if self.tokens[after].is_punct('=') {
                if let Some(mut v) = self.next_code(after + 1) {
                    if self.tokens[v].is_punct('|') || self.tokens[v].is_ident("move") {
                        // `let run = |..| { .. }`: calling `run(..)` later
                        // is not a workspace function call.
                        self.facts.fns[fn_idx]
                            .locals
                            .entry(var)
                            .or_insert_with(|| "<closure>".to_string());
                        i = n + 1;
                        continue;
                    }
                    // `let x = &profiles[4]` — refs don't change the type.
                    while self.tokens[v].is_punct('&')
                        || self.tokens[v].is_punct('*')
                        || self.tokens[v].is_ident("mut")
                    {
                        match self.next_code(v + 1) {
                            Some(nn) => v = nn,
                            None => break,
                        }
                    }
                    let t = &self.tokens[v];
                    if t.kind == TokenKind::Ident
                        && t.text.chars().next().is_some_and(char::is_uppercase)
                        && self.next_code(v + 1).is_some_and(|f| {
                            self.tokens[f].is_punct(':') || self.tokens[f].is_punct('{')
                        })
                    {
                        // `let x = Type::new(..)` / `let x = Type { .. }`.
                        self.facts.fns[fn_idx].locals.entry(var).or_insert_with(|| t.text.clone());
                    } else if t.kind == TokenKind::Ident {
                        // `let alerts = self.clds.alerts.read();` or
                        // `let r = evaluate(&cfg);` — a typeable chain,
                        // resolved on demand by the builder.
                        if let Some(chain) = self.rhs_binding(v, &[';']) {
                            self.facts.fns[fn_idx].chain_lets.entry(var).or_insert(chain);
                        }
                    }
                }
            }
            i = n + 1;
        }
    }

    /// `Some(x) = <rhs> {` (if-let / while-let): the bound name and the
    /// RHS chain with a trailing `#unwrap` (the Option payload).
    fn some_binding(&self, some_idx: usize) -> Option<(String, Vec<String>)> {
        let open = self.next_code(some_idx + 1)?;
        if !self.tokens[open].is_punct('(') {
            return None;
        }
        let close = scan::matching(self.tokens, open, '(', ')')?;
        let mut b = self.next_code(open + 1)?;
        while self.tokens[b].is_punct('&')
            || self.tokens[b].is_ident("mut")
            || self.tokens[b].is_ident("ref")
        {
            b = self.next_code(b + 1)?;
        }
        if self.tokens[b].kind != TokenKind::Ident || self.next_code(b + 1) != Some(close) {
            return None;
        }
        let var = self.tokens[b].text.clone();
        let eq = self.next_code(close + 1)?;
        if !self.tokens[eq].is_punct('=') {
            return None;
        }
        let mut v = self.next_code(eq + 1)?;
        while self.tokens[v].is_punct('&')
            || self.tokens[v].is_punct('*')
            || self.tokens[v].is_ident("mut")
        {
            v = self.next_code(v + 1)?;
        }
        if self.tokens[v].kind != TokenKind::Ident {
            return None;
        }
        let mut chain = self.rhs_binding(v, &['{'])?;
        chain.push("#unwrap".to_string());
        Some((var, chain))
    }

    /// Parse a `let` RHS starting at ident `start` as a typeable chain:
    /// field accesses, transparent method hops (`#m`), other method calls
    /// (`#mcall:m`), indexing (`#elem`), `?` propagation (`#unwrap`), and
    /// call heads (`#call:f` / `#qcall:a::b::f`). The chain must end at
    /// one of `terms`; any other shape yields `None`.
    fn rhs_binding(&self, start: usize, terms: &[char]) -> Option<Vec<String>> {
        // Head: an ident or a qualified path, either possibly called.
        let mut segs = vec![self.tokens[start].text.clone()];
        let mut cur = start;
        loop {
            let n = self.next_code(cur + 1)?;
            if !self.tokens[n].is_punct(':') {
                break;
            }
            let c2 = self.next_code(n + 1)?;
            if !self.tokens[c2].is_punct(':') {
                return None;
            }
            let s = self.next_code(c2 + 1)?;
            if self.tokens[s].kind != TokenKind::Ident {
                return None;
            }
            segs.push(self.tokens[s].text.clone());
            cur = s;
        }
        let mut chain: Vec<String> = Vec::new();
        let after = self.next_code(cur + 1)?;
        let mut k = if self.tokens[after].is_punct('(') {
            chain.push(if segs.len() == 1 {
                format!("#call:{}", segs[0])
            } else {
                format!("#qcall:{}", segs.join("::"))
            });
            scan::matching(self.tokens, after, '(', ')')?
        } else if segs.len() == 1 {
            chain.push(segs.remove(0));
            cur
        } else {
            // Qualified non-call (a const or unit-variant path): the
            // uppercase-ctor branch already handles the typeable cases.
            return None;
        };
        // Tail: `.field`, `.m(..)`, `[..]`, `?`, until a terminator.
        loop {
            let n = self.next_code(k + 1)?;
            let t = &self.tokens[n];
            if t.kind != TokenKind::Punct {
                return None;
            }
            let ch = t.text.chars().next().unwrap_or(' ');
            if terms.contains(&ch) {
                return Some(chain);
            }
            match ch {
                '.' => {
                    let f = self.next_code(n + 1)?;
                    if self.tokens[f].kind != TokenKind::Ident {
                        return None;
                    }
                    let name = self.tokens[f].text.clone();
                    if self.next_code(f + 1).is_some_and(|a| self.tokens[a].is_punct('(')) {
                        let a = self.next_code(f + 1)?;
                        let close = scan::matching(self.tokens, a, '(', ')')?;
                        chain.push(if TRANSPARENT_METHODS.contains(&name.as_str()) {
                            format!("#{name}")
                        } else {
                            format!("#mcall:{name}")
                        });
                        k = close;
                    } else {
                        chain.push(name);
                        k = f;
                    }
                }
                '[' => {
                    let close = scan::matching(self.tokens, n, '[', ']')?;
                    chain.push("#elem".to_string());
                    k = close;
                }
                '?' => {
                    chain.push("#unwrap".to_string());
                    k = n;
                }
                _ => return None,
            }
        }
    }

    // ---- body tokens ---------------------------------------------------

    /// Inspect one token inside a function body for call sites, panic
    /// sites, and taint sources.
    fn body_token(&mut self, idx: usize) {
        let Some(fn_idx) = self.current_fn() else { return };
        let tok = &self.tokens[idx];

        match tok.kind {
            TokenKind::Ident => {}
            TokenKind::Punct => {
                if tok.is_punct('[') {
                    self.check_index_site(fn_idx, idx);
                }
                return;
            }
            _ => return,
        }

        // Receiver-independent taint sources.
        if RNG_IDENTS.iter().any(|r| tok.is_ident(r)) {
            self.facts.fns[fn_idx].sources.push(RawSource {
                kind: RawSourceKind::UnseededRng,
                what: tok.text.clone(),
                line: tok.span.line,
            });
        }
        if WALL_CLOCK_IDENTS.iter().any(|w| tok.is_ident(w)) {
            self.facts.fns[fn_idx].sources.push(RawSource {
                kind: RawSourceKind::WallClock,
                what: tok.text.clone(),
                line: tok.span.line,
            });
        }
        if tok.is_ident("Instant") && self.path_segment_is(idx, "now") {
            self.facts.fns[fn_idx].sources.push(RawSource {
                kind: RawSourceKind::WallClock,
                what: "Instant::now".to_string(),
                line: tok.span.line,
            });
        }

        // Panic macros (incl. asserts).
        let next_is_bang = self.tok(idx + 1).is_some_and(|t| t.is_punct('!'));
        if next_is_bang {
            if PANIC_MACROS.iter().any(|m| tok.is_ident(m)) {
                self.facts.fns[fn_idx].panics.push(PanicSite {
                    kind: PanicKind::Macro,
                    line: tok.span.line,
                    col: tok.span.col,
                });
            } else if ASSERT_MACROS.iter().any(|m| tok.is_ident(m)) {
                self.facts.fns[fn_idx].panics.push(PanicSite {
                    kind: PanicKind::Assert,
                    line: tok.span.line,
                    col: tok.span.col,
                });
            }
            return;
        }

        // `for _ in <chain>` hash-iteration candidates.
        if tok.is_ident("in") {
            self.check_for_iter(fn_idx, idx);
            return;
        }

        // Call sites: the ident must be directly callable.
        let Some(open) = self.call_paren(idx) else { return };
        let prev = self.prev_code(idx);
        let prev_tok = prev.map(|p| &self.tokens[p]);

        if prev_tok.is_some_and(|t| t.is_punct('.')) {
            self.method_call(fn_idx, idx, open);
            return;
        }
        if prev_tok.is_some_and(|t| t.is_ident("fn")) {
            return; // definition, already handled
        }
        if EXPR_KEYWORDS.contains(&tok.text.as_str()) {
            return;
        }
        if prev_tok.is_some_and(|t| t.is_punct(':'))
            && prev.and_then(|p| self.prev_code(p)).is_some_and(|q| self.tokens[q].is_punct(':'))
        {
            self.qualified_call(fn_idx, idx);
            return;
        }
        // Bare `foo(..)`.
        let line = tok.span.line;
        let col = tok.span.col;
        let name = tok.text.clone();
        self.push_call(fn_idx, RawCallKind::Direct(name), idx, line, col, open);
    }

    /// The `(` token index when the ident at `idx` is called (handles
    /// `.collect::<T>(..)` turbofish), else `None`.
    fn call_paren(&self, idx: usize) -> Option<usize> {
        let mut n = self.next_code(idx + 1)?;
        // Turbofish: `::<..>` between name and parens.
        if self.tokens[n].is_punct(':') {
            let c2 = self.next_code(n + 1)?;
            if !self.tokens[c2].is_punct(':') {
                return None;
            }
            let lt = self.next_code(c2 + 1)?;
            if !self.tokens[lt].is_punct('<') {
                return None;
            }
            let mut angle = 0i64;
            let mut i = lt;
            while i < self.tokens.len() {
                let t = &self.tokens[i];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') && !self.prev_is_dash(i) {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                i += 1;
            }
            n = self.next_code(i + 1)?;
        }
        self.tokens[n].is_punct('(').then_some(n)
    }

    /// `.name(..)` — record a method call with its receiver chain.
    fn method_call(&mut self, fn_idx: usize, idx: usize, open: usize) {
        let name = self.tokens[idx].text.clone();
        let line = self.tokens[idx].span.line;
        let col = self.tokens[idx].span.col;

        // Unwrap/expect panic sites ride along.
        if name == "unwrap" || name == "expect" {
            self.facts.fns[fn_idx].panics.push(PanicSite {
                kind: if name == "unwrap" { PanicKind::Unwrap } else { PanicKind::Expect },
                line,
                col,
            });
        }

        // Receiver chain: `a.b.c.name(` → ["a", "b", "c"].
        let chain = self.receiver_chain(idx);
        // `<chain>.iter().map(|x| ..)` binds `x` to the element type.
        if ITER_ADAPTERS.contains(&name.as_str()) {
            if let Some(ch) = &chain {
                self.record_closure_elem(fn_idx, open, ch);
            }
        }
        self.push_call(fn_idx, RawCallKind::Method { name, chain }, idx, line, col, open);
    }

    /// Bind a single-ident closure parameter of an iterator adapter to the
    /// iterated chain's element type: for `results.iter().map(|r| ..)`,
    /// `r` gets the chain `["results", "#elem"]`. Tuple patterns (from
    /// `enumerate`/`zip`) and non-iterator receivers are skipped.
    fn record_closure_elem(&mut self, fn_idx: usize, open: usize, chain: &[String]) {
        let Some((last, head)) = chain.split_last() else { return };
        if !matches!(last.as_str(), "#mcall:iter" | "#mcall:iter_mut" | "#mcall:into_iter") {
            return;
        }
        let Some(bar) = self.next_code(open + 1) else { return };
        if !self.tokens[bar].is_punct('|') {
            return;
        }
        let Some(mut p) = self.next_code(bar + 1) else { return };
        while self.tokens[p].is_punct('&')
            || self.tokens[p].is_ident("mut")
            || self.tokens[p].is_ident("ref")
        {
            match self.next_code(p + 1) {
                Some(n) => p = n,
                None => return,
            }
        }
        if self.tokens[p].kind != TokenKind::Ident {
            return;
        }
        if !self.next_code(p + 1).is_some_and(|c| self.tokens[c].is_punct('|')) {
            return;
        }
        let mut elem: Vec<String> = head.to_vec();
        elem.push("#elem".to_string());
        self.facts.fns[fn_idx].elem_lets.entry(self.tokens[p].text.clone()).or_insert(elem);
    }

    /// Walk back from the method name's dot, collecting the receiver
    /// chain. Plain ident hops are field accesses; method-call hops
    /// contribute `#name` (transparent) or `#mcall:name` markers;
    /// `recv[..]` contributes `#elem`; a call head ends the walk with
    /// `#call:f` / `#qcall:a::b::f`. Receivers the type pipeline cannot
    /// model (`(a + b).x(..)`, literals, …) yield `None`.
    fn receiver_chain(&self, method_idx: usize) -> Option<Vec<String>> {
        let dot = self.prev_code(method_idx)?;
        let mut chain = Vec::new();
        let mut k = self.prev_code(dot)?;
        loop {
            let t = &self.tokens[k];
            if t.is_punct(')') {
                // `<recv>.m(..).name(` — a method-call hop — or a call
                // head (`f(..)`, `a::b::f(..)`) ending the walk.
                let open = self.backward_matching(k, '(', ')')?;
                let m = self.prev_code(open)?;
                if self.tokens[m].kind != TokenKind::Ident {
                    return None;
                }
                let mname = self.tokens[m].text.clone();
                let Some(d) = self.prev_code(m) else {
                    chain.push(format!("#call:{mname}"));
                    break;
                };
                if self.tokens[d].is_punct('.') {
                    chain.push(if TRANSPARENT_METHODS.contains(&mname.as_str()) {
                        format!("#{mname}")
                    } else {
                        format!("#mcall:{mname}")
                    });
                    k = self.prev_code(d)?;
                    continue;
                }
                if self.tokens[d].is_punct(':')
                    && self.prev_code(d).is_some_and(|c| self.tokens[c].is_punct(':'))
                {
                    // Qualified call head: collect the path backwards.
                    let c2 = self.prev_code(d)?;
                    let mut segs = vec![mname];
                    let mut seg = self.prev_code(c2)?;
                    loop {
                        if self.tokens[seg].kind != TokenKind::Ident {
                            return None;
                        }
                        segs.push(self.tokens[seg].text.clone());
                        let Some(p) = self.prev_code(seg) else { break };
                        if !self.tokens[p].is_punct(':') {
                            break;
                        }
                        let p2 = self.prev_code(p)?;
                        if !self.tokens[p2].is_punct(':') {
                            break;
                        }
                        seg = self.prev_code(p2)?;
                    }
                    segs.reverse();
                    chain.push(format!("#qcall:{}", segs.join("::")));
                    break;
                }
                if EXPR_KEYWORDS.contains(&mname.as_str()) {
                    return None;
                }
                chain.push(format!("#call:{mname}"));
                break;
            }
            if t.is_punct(']') {
                // `<recv>[..].name(` — element of the indexed collection.
                let open = self.backward_matching(k, '[', ']')?;
                chain.push("#elem".to_string());
                k = self.prev_code(open)?;
                continue;
            }
            if t.kind != TokenKind::Ident {
                return None;
            }
            chain.push(t.text.clone());
            let Some(p) = self.prev_code(k) else { break };
            if self.tokens[p].is_punct('.') {
                k = self.prev_code(p)?;
            } else {
                break;
            }
        }
        chain.reverse();
        Some(chain)
    }

    /// The `openc` matching the `closec` at `close`, scanning backwards.
    fn backward_matching(&self, close: usize, openc: char, closec: char) -> Option<usize> {
        let mut depth = 0i64;
        let mut j = close;
        loop {
            let t = &self.tokens[j];
            if t.is_punct(closec) {
                depth += 1;
            } else if t.is_punct(openc) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
    }

    /// `a::b::name(..)` — record a qualified-path call.
    fn qualified_call(&mut self, fn_idx: usize, idx: usize) {
        let mut segs = vec![self.tokens[idx].text.clone()];
        let mut k = idx;
        while let Some(c1) = self.prev_code(k) {
            if !self.tokens[c1].is_punct(':') {
                break;
            }
            let Some(c2) = self.prev_code(c1) else { break };
            if !self.tokens[c2].is_punct(':') {
                break;
            }
            let Some(seg) = self.prev_code(c2) else { break };
            let t = &self.tokens[seg];
            if t.kind != TokenKind::Ident {
                break;
            }
            // A generic close before `::` (`Vec::<T>::new`) ends the walk.
            segs.push(t.text.clone());
            k = seg;
        }
        segs.reverse();
        let line = self.tokens[idx].span.line;
        let col = self.tokens[idx].span.col;
        let Some(open) = self.call_paren(idx) else { return };
        self.push_call(fn_idx, RawCallKind::Qualified(segs), idx, line, col, open);
    }

    fn push_call(
        &mut self,
        fn_idx: usize,
        kind: RawCallKind,
        tok: usize,
        line: u32,
        col: u32,
        paren_open: usize,
    ) {
        let held_until = self.guard_extent(tok, paren_open);
        let call = RawCall {
            kind,
            tok,
            line,
            col,
            held_until,
            in_scope_spawn: Self::in_ranges(&self.spawn_extents, tok),
            in_scope: Self::in_ranges(&self.thread_scopes, tok),
        };
        self.facts.fns[fn_idx].calls.push(call);
    }

    /// Token index where a guard value returned by the call at `tok` would
    /// drop: the end of the enclosing block when the result is `let`-bound,
    /// otherwise the end of the statement (next `;`).
    fn guard_extent(&self, tok: usize, paren_open: usize) -> usize {
        // Statement start: scan back to the nearest `;`, `{` or `}`.
        let mut s = tok;
        while s > 0 {
            let t = &self.tokens[s - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            s -= 1;
        }
        let let_bound = self.next_code(s).is_some_and(|i| self.tokens[i].is_ident("let"));
        if let_bound {
            // Enclosing block: innermost `{` whose extent covers `tok`.
            let mut best: Option<usize> = None;
            let mut depth_opens: Vec<usize> = Vec::new();
            for (i, t) in self.tokens.iter().enumerate() {
                if i > tok {
                    break;
                }
                if t.is_punct('{') {
                    depth_opens.push(i);
                } else if t.is_punct('}') {
                    depth_opens.pop();
                }
            }
            if let Some(&open) = depth_opens.last() {
                best = syn::matching_close(self.tokens, open);
            }
            return best.unwrap_or(self.tokens.len().saturating_sub(1));
        }
        // Temporary: dies at the end of the statement.
        let close = scan::matching(self.tokens, paren_open, '(', ')').unwrap_or(paren_open);
        (close..self.tokens.len())
            .find(|&i| self.tokens[i].is_punct(';'))
            .unwrap_or(self.tokens.len().saturating_sub(1))
    }

    /// `x[..]`-style index sites that can panic.
    fn check_index_site(&mut self, fn_idx: usize, idx: usize) {
        let Some(p) = self.prev_code(idx) else { return };
        let t = &self.tokens[p];
        let indexable = (t.kind == TokenKind::Ident && !EXPR_KEYWORDS.contains(&t.text.as_str()))
            || t.is_punct(')')
            || t.is_punct(']')
            || t.is_punct('?');
        if !indexable {
            return;
        }
        // `x[..]` (full range) never panics.
        let Some(close) = scan::matching(self.tokens, idx, '[', ']') else { return };
        let inner: Vec<&Token> =
            self.tokens[idx + 1..close].iter().filter(|t| !t.is_comment()).collect();
        if inner.len() == 2 && inner.iter().all(|t| t.is_punct('.')) {
            return;
        }
        if inner.is_empty() {
            return;
        }
        let span = self.tokens[idx].span;
        self.facts.fns[fn_idx].panics.push(PanicSite {
            kind: PanicKind::Index,
            line: span.line,
            col: span.col,
        });
    }

    /// `for _ in <chain>` — record the iterated receiver chain.
    fn check_for_iter(&mut self, fn_idx: usize, idx: usize) {
        // Only `for .. in` loops; `in` also appears nowhere else as a
        // keyword in expression position.
        let Some(mut k) = self.next_code(idx + 1) else { return };
        // Skip leading `&` / `mut`.
        while self.tokens[k].is_punct('&') || self.tokens[k].is_ident("mut") {
            match self.next_code(k + 1) {
                Some(n) => k = n,
                None => return,
            }
        }
        if self.tokens[k].kind != TokenKind::Ident {
            return;
        }
        let mut chain = vec![self.tokens[k].text.clone()];
        let line = self.tokens[k].span.line;
        let mut stopped_at_call = false;
        while let Some(d) = self.next_code(k + 1) {
            if !self.tokens[d].is_punct('.') {
                break;
            }
            let Some(f) = self.next_code(d + 1) else { break };
            if self.tokens[f].kind != TokenKind::Ident {
                break;
            }
            // Stop at a method call — that is a Method site, not a field.
            if self.next_code(f + 1).is_some_and(|n| self.tokens[n].is_punct('(')) {
                // `.iter()`-family still iterates the chain's elements.
                stopped_at_call =
                    !["iter", "iter_mut", "into_iter"].contains(&self.tokens[f].text.as_str());
                break;
            }
            chain.push(self.tokens[f].text.clone());
            k = f;
        }
        // `for x in [&[mut]] <chain>` binds `x` to the element type.
        if !stopped_at_call {
            if let Some(b) = self.prev_code(idx) {
                let bind = &self.tokens[b];
                if bind.kind == TokenKind::Ident
                    && self.prev_code(b).is_some_and(|f| self.tokens[f].is_ident("for"))
                {
                    let mut elem = chain.clone();
                    elem.push("#elem".to_string());
                    self.facts.fns[fn_idx].elem_lets.entry(bind.text.clone()).or_insert(elem);
                }
            }
        }
        self.facts.fns[fn_idx].for_iters.push(RawForIter { chain, line });
    }

    /// Is token `idx` followed by `::segment`?
    fn path_segment_is(&self, idx: usize, segment: &str) -> bool {
        self.tok(idx + 1).is_some_and(|t| t.is_punct(':'))
            && self.tok(idx + 2).is_some_and(|t| t.is_punct(':'))
            && self.tok(idx + 3).is_some_and(|t| t.is_ident(segment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        let file = syn::parse_file(src).expect("lex");
        extract_file("crates/demo/src/lib.rs", &file.tokens, &|_| true)
    }

    #[test]
    fn fn_defs_with_modules_and_impls() {
        let f = facts(
            "pub fn top() {}\n\
             mod inner {\n    fn hidden() {}\n}\n\
             struct S { x: u32 }\n\
             impl S {\n    pub fn method(&self) {}\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<(String, Vec<String>, Option<String>)> = f
            .fns
            .iter()
            .map(|r| (r.name.clone(), r.modpath.clone(), r.impl_ctx.as_ref().map(|c| c.ty.clone())))
            .collect();
        assert_eq!(names[0], ("top".into(), vec![], None));
        assert!(f.fns[0].public);
        assert_eq!(names[1], ("hidden".into(), vec!["inner".into()], None));
        assert!(!f.fns[1].public);
        assert_eq!(names[2], ("method".into(), vec![], Some("S".into())));
        assert_eq!(names[3], ("fmt".into(), vec![], Some("S".into())));
        assert_eq!(f.fns[3].impl_ctx.as_ref().unwrap().trait_name.as_deref(), Some("Display"));
        assert_eq!(f.fns[2].locals.get("self").map(String::as_str), Some("S"));
    }

    #[test]
    fn call_kinds_and_receiver_chains() {
        let f = facts(
            "fn f(s: Store) {\n    helper();\n    s.catalog.push(1);\n    Wan::contract(2);\n    a::b::c();\n    x().chained();\n}\n",
        );
        let calls = &f.fns[0].calls;
        assert!(matches!(&calls[0].kind, RawCallKind::Direct(n) if n == "helper"));
        assert!(matches!(
            &calls[1].kind,
            RawCallKind::Method { name, chain: Some(c) } if name == "push" && c == &vec!["s".to_string(), "catalog".to_string()]
        ));
        assert!(
            matches!(&calls[2].kind, RawCallKind::Qualified(p) if p == &vec!["Wan".to_string(), "contract".to_string()])
        );
        assert!(matches!(&calls[3].kind, RawCallKind::Qualified(p) if p.len() == 3));
        assert!(matches!(&calls[4].kind, RawCallKind::Direct(n) if n == "x"));
        assert!(matches!(
            &calls[5].kind,
            RawCallKind::Method { chain: Some(c), .. } if c == &vec!["#call:x".to_string()]
        ));
    }

    #[test]
    fn panic_sites_with_spans() {
        let f = facts(
            "fn f(v: Vec<u32>, o: Option<u8>) -> u32 {\n    let a = v[0];\n    o.unwrap();\n    o.expect(\"x\");\n    assert!(a > 0);\n    panic!(\"boom\")\n}\n",
        );
        let kinds: Vec<PanicKind> = f.fns[0].panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Index,
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::Assert,
                PanicKind::Macro
            ]
        );
        assert_eq!(f.fns[0].panics[0].line, 2);
    }

    #[test]
    fn full_range_index_does_not_panic() {
        let f = facts("fn f(v: &[u8]) -> &[u8] { &v[..] }\nfn g(v: &[u8]) -> &[u8] { &v[1..] }\n");
        assert!(f.fns[0].panics.is_empty());
        assert_eq!(f.fns[1].panics.len(), 1);
    }

    #[test]
    fn sources_and_for_iters() {
        let f = facts(
            "fn f(m: HashMap<u32, u32>) {\n    let t = Instant::now();\n    let r = thread_rng();\n    for (k, v) in &m { let _ = (k, v); }\n}\n",
        );
        let kinds: Vec<RawSourceKind> = f.fns[0].sources.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![RawSourceKind::WallClock, RawSourceKind::UnseededRng]);
        assert_eq!(f.fns[0].for_iters.len(), 1);
        assert_eq!(f.fns[0].for_iters[0].chain, vec!["m".to_string()]);
        assert_eq!(f.fns[0].locals.get("m").map(String::as_str), Some("HashMap<u32,u32>"));
    }

    #[test]
    fn struct_fields_and_statics_record_types() {
        let f = facts(
            "struct Obs {\n    pub tracer: Mutex<TracerState>,\n    count: u64,\n}\n\
             static GLOBAL: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n",
        );
        let obs = f.structs.get("Obs").expect("struct recorded");
        assert_eq!(obs.fields.get("tracer").map(String::as_str), Some("Mutex<TracerState>"));
        assert_eq!(f.statics.get("GLOBAL").map(String::as_str), Some("Mutex<Vec<u32>>"));
    }

    #[test]
    fn test_code_is_fully_excluded() {
        let f = facts(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { lived(); }\n    #[test]\n    fn t() { live(); }\n}\n",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "live");
    }

    #[test]
    fn scope_and_spawn_flags() {
        let f = facts(
            "fn par(results: Mutex<Vec<u32>>) {\n    std::thread::scope(|s| {\n        s.spawn(|| { results.lock().push(compute()); });\n    });\n    after();\n}\n",
        );
        let calls = &f.fns[0].calls;
        assert!(f.fns[0].has_scope);
        let push = calls
            .iter()
            .find(|c| matches!(&c.kind, RawCallKind::Method { name, .. } if name == "push"))
            .expect("push call");
        assert!(push.in_scope_spawn);
        let after = calls
            .iter()
            .find(|c| matches!(&c.kind, RawCallKind::Direct(n) if n == "after"))
            .expect("after call");
        assert!(!after.in_scope && !after.in_scope_spawn);
    }

    #[test]
    fn let_bound_guard_extends_to_block_end() {
        let f = facts(
            "fn f(m: Mutex<u32>) {\n    let g = m.lock();\n    use_it(g);\n    m.lock().checked_add(1);\n    done();\n}\n",
        );
        let locks: Vec<&RawCall> = f.fns[0]
            .calls
            .iter()
            .filter(|c| matches!(&c.kind, RawCallKind::Method { name, .. } if name == "lock"))
            .collect();
        assert_eq!(locks.len(), 2);
        // First lock is let-bound: guard lives past the `use_it` call.
        let use_it = f.fns[0]
            .calls
            .iter()
            .find(|c| matches!(&c.kind, RawCallKind::Direct(n) if n == "use_it"))
            .unwrap();
        assert!(locks[0].held_until > use_it.tok);
        // Second lock is a temporary: guard dies before `done()`.
        let done = f.fns[0]
            .calls
            .iter()
            .find(|c| matches!(&c.kind, RawCallKind::Direct(n) if n == "done"))
            .unwrap();
        assert!(locks[1].held_until < done.tok);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let f =
            facts("fn f(v: Vec<u32>) { let s = v.iter().collect::<Vec<_>>(); helper::<u32>(); }");
        let has_collect = f.fns[0]
            .calls
            .iter()
            .any(|c| matches!(&c.kind, RawCallKind::Method { name, .. } if name == "collect"));
        assert!(has_collect);
    }
}
