//! Workspace call graph: per-file facts resolved into one typed graph.
//!
//! The builder consumes [`extract::FileFacts`] from every production
//! source file and resolves call sites to workspace function nodes:
//!
//! - **direct calls** resolve through free-function indexes, preferring
//!   the caller's own module, then its crate, then a unique global match;
//! - **qualified calls** (`a::b::f`, `Type::f`, `Self::f`, `smn_x::m::f`)
//!   use the path segments as crate/module/type hints;
//! - **method calls** resolve by receiver type when the receiver chain is
//!   typeable from params, `let` bindings, struct fields, and statics; an
//!   untypeable receiver falls back to a unique-name match unless the name
//!   is a ubiquitous std method.
//!
//! Anything that matches *no* workspace function is counted as external
//! (std / vendored). Anything that matches *more than one* candidate after
//! the preference filters lands in the **unresolved bucket**, which is
//! serialized and reported (`deep/unresolved-call`) rather than silently
//! dropped — the graph is honest about its own blind spots.
//!
//! The graph also finalizes receiver-dependent determinism sources
//! (hash-map iteration, channel receives, lock acquisitions inside
//! `thread::scope`) now that receiver types are known, and carries the
//! ordered lock events [`crate::locks`] consumes.

pub mod extract;

use std::collections::BTreeMap;

use serde_json::Value;

use crate::config::Config;
use crate::scan::Allow;
use extract::{FileFacts, ImplCtx, PanicSite, RawCallKind, RawFn, RawSourceKind};

/// Method names whose call iterates the receiver.
const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

/// Method names that receive from a channel (arrival order).
const CHANNEL_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout"];

/// Method names that acquire a lock guard.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Method names too ubiquitous in std to unique-resolve on an untypeable
/// receiver — a single workspace `len` must not capture every `x.len()`.
const COMMON_STD_METHODS: &[&str] = &[
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "collect",
    "fold",
    "sum",
    "min",
    "max",
    "sort",
    "sort_by",
    "sort_by_key",
    "unwrap",
    "unwrap_or",
    "expect",
    "to_string",
    "to_owned",
    "as_str",
    "as_ref",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "default",
    "extend",
    "join",
    "split",
    "trim",
    "parse",
    "abs",
    "clamp",
    "new",
    "with_capacity",
    "entry",
    "or_insert",
    "or_default",
    "take",
    "replace",
    "send",
    "write",
    "read",
    "lock",
    "flush",
    "count",
    "any",
    "all",
    "find",
    "position",
    "rev",
    "zip",
    "chain",
    "enumerate",
    "last",
    "first",
    "starts_with",
    "ends_with",
];

/// Wrapper types peeled off before classifying a receiver type.
const WRAPPERS: &[&str] = &["Arc", "Rc", "Box", "RefCell", "Cell", "Option"];

/// One determinism-taint source attached to a node.
#[derive(Debug, Clone)]
pub struct SourceSite {
    /// Stable family id: `wall-clock`, `unseeded-rng`, `hash-iter`,
    /// `channel-order`, `lock-order`.
    pub kind: &'static str,
    /// What was seen, human-readable (`Instant::now`, `self.gauges.iter()`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// One lock acquisition inside a function body, in token order.
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// Stable lock identity: `Type.field`, `fn-id::local`, or
    /// `crate::STATIC`.
    pub lock: String,
    /// `lock`, `read`, or `write`.
    pub op: String,
    /// 1-based line.
    pub line: u32,
    /// Token index of the acquisition (orders events within the body).
    pub tok: usize,
    /// Token index after which the guard has dropped.
    pub held_until: usize,
    /// Acquired inside a `thread::scope` extent.
    pub in_scope: bool,
    /// Acquired inside a `spawn(..)` closure inside a `thread::scope`.
    pub in_scope_spawn: bool,
}

/// A call edge resolved to a workspace node.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Caller node index.
    pub caller: usize,
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// Token index of the call site (orders calls vs lock events).
    pub tok: usize,
}

/// A call site that matched several workspace candidates.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Caller node index.
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Candidate node indexes (sorted).
    pub candidates: Vec<usize>,
}

/// A mutation call executed while holding a scoped-spawn lock guard
/// (order-sensitive result collection).
#[derive(Debug, Clone)]
pub struct ScopeMutation {
    /// Node index the site lives in.
    pub node: usize,
    /// The mutating method name (`push`, `insert`, `extend`).
    pub method: String,
    /// The lock whose guard is held.
    pub lock: String,
    /// 1-based line of the mutation.
    pub line: u32,
    /// 1-based column of the mutation.
    pub col: u32,
}

/// One function in the workspace call graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Canonical id, e.g. `obs::Hub::record` or `te::solver::route`.
    pub id: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Crate (workspace directory name, e.g. `core`).
    pub krate: String,
    /// Bare `pub` visibility.
    pub public: bool,
    /// Defined in a file on a configured deterministic path.
    pub det: bool,
    /// Defined in a file where the panic rules apply (library code).
    pub lib: bool,
    /// Local potential-panic sites.
    pub panics: Vec<PanicSite>,
    /// Local determinism-taint sources (finalized, receiver-typed).
    pub sources: Vec<SourceSite>,
    /// Ordered lock acquisitions.
    pub locks: Vec<LockEvent>,
    /// Body contains a `thread::scope`.
    pub has_scope: bool,
}

/// The resolved workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Nodes sorted by id.
    pub nodes: Vec<Node>,
    /// Edges sorted by (caller, callee, line).
    pub edges: Vec<CallEdge>,
    /// Ambiguous call sites, sorted by (caller, line, name).
    pub unresolved: Vec<Unresolved>,
    /// Count of call sites that matched no workspace function.
    pub n_external: usize,
    /// Order-sensitive mutations under scoped locks.
    pub scope_mutations: Vec<ScopeMutation>,
    /// Per-file allow annotations (file → validated allows).
    pub allows: BTreeMap<String, Vec<Allow>>,
}

impl CallGraph {
    /// Node index by id.
    #[must_use]
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.nodes.binary_search_by(|n| n.id.as_str().cmp(id)).ok()
    }

    /// Forward adjacency: for each node, sorted unique `(callee, line)`
    /// pairs (line = first call site).
    #[must_use]
    pub fn out_adjacency(&self) -> Vec<Vec<(usize, u32)>> {
        let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.caller].push((e.callee, e.line));
        }
        for row in &mut adj {
            row.sort_unstable();
            row.dedup_by_key(|p| p.0);
        }
        adj
    }

    /// Reverse adjacency: for each node, sorted unique caller indexes.
    #[must_use]
    pub fn in_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.callee].push(e.caller);
        }
        for row in &mut adj {
            row.sort_unstable();
            row.dedup();
        }
        adj
    }

    /// True when `rule` is waived at `file:line` by a validated allow.
    #[must_use]
    pub fn waived(&self, file: &str, rule: &str, line: u32) -> bool {
        self.allows.get(file).is_some_and(|a| crate::scan::allowed(a, rule, line))
    }

    /// Canonical JSON: fully sorted, pretty-printed, byte-stable for a
    /// given source tree. This is what `artifacts/callgraph.json` holds
    /// and what the artifact engine's `callgraph` kind validates.
    #[must_use]
    pub fn to_canonical_json(&self) -> String {
        let num = |n: usize| Value::U64(n as u64);
        let mut functions = Vec::new();
        for n in &self.nodes {
            let sources: Vec<Value> = n
                .sources
                .iter()
                .map(|s| Value::Str(format!("{}:{}@{}", s.kind, s.what, s.line)))
                .collect();
            functions.push(Value::Map(vec![
                ("id".to_string(), Value::Str(n.id.clone())),
                ("file".to_string(), Value::Str(n.file.clone())),
                ("line".to_string(), Value::U64(u64::from(n.line))),
                ("crate".to_string(), Value::Str(n.krate.clone())),
                ("public".to_string(), Value::Bool(n.public)),
                ("det".to_string(), Value::Bool(n.det)),
                ("lib".to_string(), Value::Bool(n.lib)),
                ("panic_sites".to_string(), num(n.panics.len())),
                ("sources".to_string(), Value::Seq(sources)),
            ]));
        }
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|e| Value::Seq(vec![num(e.caller), num(e.callee), Value::U64(u64::from(e.line))]))
            .collect();
        let unresolved: Vec<Value> = self
            .unresolved
            .iter()
            .map(|u| {
                Value::Map(vec![
                    ("caller".to_string(), num(u.caller)),
                    ("name".to_string(), Value::Str(u.name.clone())),
                    ("line".to_string(), Value::U64(u64::from(u.line))),
                    (
                        "candidates".to_string(),
                        Value::Seq(u.candidates.iter().map(|&c| num(c)).collect()),
                    ),
                ])
            })
            .collect();
        let counts = Value::Map(vec![
            ("functions".to_string(), num(self.nodes.len())),
            ("edges".to_string(), num(self.edges.len())),
            ("unresolved".to_string(), num(self.unresolved.len())),
            ("external".to_string(), num(self.n_external)),
        ]);
        let root = Value::Map(vec![
            ("kind".to_string(), Value::Str("callgraph".to_string())),
            ("schema".to_string(), Value::U64(1)),
            ("functions".to_string(), Value::Seq(functions)),
            ("edges".to_string(), Value::Seq(edges)),
            ("unresolved".to_string(), Value::Seq(unresolved)),
            ("counts".to_string(), counts),
        ]);
        let mut out = serde_json::to_string_pretty(&root).unwrap_or_default();
        out.push('\n');
        out
    }
}

/// Build the workspace call graph from `(path, source)` pairs. Files that
/// fail to lex are skipped here — the source engine already denies them
/// via `source/unparsed`.
#[must_use]
pub fn build(files: &[(String, String)], cfg: &Config) -> CallGraph {
    let known = |r: &str| cfg.known_rule(r);
    let mut facts: Vec<FileFacts> = Vec::new();
    for (path, src) in files {
        if !path.ends_with(".rs") || !cfg.scanned(path) {
            continue;
        }
        if path.contains("/tests/") || path.starts_with("tests/") || path.contains("/benches/") {
            continue;
        }
        let Ok(file) = syn::parse_file(src) else { continue };
        facts.push(extract::extract_file(path, &file.tokens, &known));
    }
    Builder::new(facts, cfg).build()
}

/// Crate directory name for a workspace-relative path
/// (`crates/core/src/lib.rs` → `core`).
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

/// File-level module path (`src/foo/bar.rs` → `["foo", "bar"]`).
fn file_modpath(path: &str) -> Vec<String> {
    let Some(after) = path.split_once("/src/").map(|(_, a)| a) else {
        return Vec::new();
    };
    let stem = after.strip_suffix(".rs").unwrap_or(after);
    let mut segs: Vec<String> = stem.split('/').map(str::to_string).collect();
    if segs.last().is_some_and(|s| s == "lib" || s == "mod") {
        segs.pop();
    }
    segs
}

/// Strip wrappers and path prefixes from a normalized type text down to
/// its base name: `Arc<Mutex<Vec<u32>>>` → `Mutex`... no — one wrapper
/// level at a time; see [`peel`].
fn base_name(ty: &str) -> &str {
    let head = ty.split('<').next().unwrap_or(ty);
    let head = head.rsplit("::").next().unwrap_or(head);
    head.trim_start_matches("dyn")
}

/// Peel one wrapper layer: `Arc<Mutex<T>>` → `Mutex<T>`; non-wrappers
/// return unchanged.
fn peel(ty: &str) -> &str {
    let base = base_name(ty);
    if !WRAPPERS.contains(&base) {
        return ty;
    }
    let Some(open) = ty.find('<') else { return ty };
    let inner = &ty[open + 1..];
    inner.strip_suffix('>').unwrap_or(inner)
}

/// Fully peel wrappers: `Arc<RwLock<HashMap<..>>>` → `RwLock<HashMap<..>>`
/// stops at the first non-wrapper.
fn peel_all(ty: &str) -> &str {
    let mut cur = ty;
    loop {
        let next = peel(cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

/// First top-level generic argument: `Mutex<Vec<u32>>` → `Vec<u32>`,
/// `Result<T, E>` → `T`.
fn generic_arg(ty: &str) -> Option<&str> {
    generic_args(ty).into_iter().next()
}

/// All top-level generic arguments: `HashMap<K, V>` → `["K", "V"]`.
fn generic_args(ty: &str) -> Vec<&str> {
    let Some(open) = ty.find('<') else { return Vec::new() };
    let Some(inner) = ty[open + 1..].strip_suffix('>') else { return Vec::new() };
    let mut args = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                args.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    args.push(&inner[start..]);
    args
}

/// Strip the reference prefix a generic argument may carry in normalized
/// type text: `&SeasonalModel` → `SeasonalModel`, `&mutFoo` → `Foo`.
fn strip_ref(ty: &str) -> &str {
    let t = ty.trim_start_matches('&');
    t.strip_prefix("mut")
        .filter(|rest| rest.chars().next().is_some_and(char::is_uppercase))
        .unwrap_or(t)
}

/// Apply a `#method` chain marker to a receiver type: `#lock`/`#read`/
/// `#write` unwrap a `Mutex`/`RwLock` payload, `#unwrap`/`#expect` a
/// `Result` (wrapper peeling already handles `Option`), `#elem` a
/// collection's element type, `#get` a map's value type; the remaining
/// transparent methods preserve the type. `None` when the transform does
/// not apply.
fn apply_marker(ty: &str, marker: &str) -> Option<String> {
    let t = peel_all(ty);
    let arg = |a: Option<&str>| a.map(|a| strip_ref(a).to_string());
    match marker {
        "#lock" | "#read" | "#write" => match base_name(t) {
            "Mutex" | "RwLock" => arg(generic_arg(t)),
            _ => None,
        },
        "#unwrap" | "#expect" => match base_name(t) {
            "Result" => arg(generic_arg(t)),
            _ => Some(t.to_string()),
        },
        "#elem" => {
            if let Some(inner) = t.strip_prefix('[') {
                let end = inner.find([';', ']']).unwrap_or(inner.len());
                return Some(strip_ref(&inner[..end]).to_string());
            }
            match base_name(t) {
                "Vec" | "VecDeque" | "BTreeSet" | "BinaryHeap" => arg(generic_arg(t)),
                _ => None,
            }
        }
        "#get" => match base_name(t) {
            "HashMap" | "BTreeMap" => arg(generic_args(t).get(1).copied()),
            "Vec" | "VecDeque" => arg(generic_arg(t)),
            _ => None,
        },
        _ => Some(t.to_string()),
    }
}

fn is_lock_type(ty: &str) -> Option<&'static str> {
    match base_name(peel_all(ty)) {
        "Mutex" => Some("lock"),
        "RwLock" => Some("rwlock"),
        _ => None,
    }
}

fn is_hash_type(ty: &str) -> bool {
    matches!(base_name(peel_all(ty)), "HashMap" | "HashSet")
}

/// Per-crate field tables for one struct name: `(crate, field → type)`.
type StructFields = Vec<(String, BTreeMap<String, String>)>;

struct Builder<'c> {
    facts: Vec<FileFacts>,
    cfg: &'c Config,
    /// Struct name → (crate, fields); later duplicates kept per crate.
    structs: BTreeMap<String, StructFields>,
    /// Static name → (crate, type).
    statics: BTreeMap<String, Vec<(String, String)>>,
    /// (fact index, fn index) in deterministic order → node index.
    node_of: BTreeMap<(usize, usize), usize>,
    nodes: Vec<Node>,
    /// Free functions: name → node indexes.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods: (type, name) → node indexes.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by bare name → node indexes.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Node index → (fact index, fn index) for body resolution.
    origin: Vec<(usize, usize)>,
}

impl<'c> Builder<'c> {
    fn new(facts: Vec<FileFacts>, cfg: &'c Config) -> Self {
        Self {
            facts,
            cfg,
            structs: BTreeMap::new(),
            statics: BTreeMap::new(),
            node_of: BTreeMap::new(),
            nodes: Vec::new(),
            free_by_name: BTreeMap::new(),
            methods: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            origin: Vec::new(),
        }
    }

    fn build(mut self) -> CallGraph {
        self.index_types();
        self.create_nodes();
        self.index_fns();
        let (edges, unresolved, n_external, scope_mutations) = self.resolve_bodies();
        let mut allows = BTreeMap::new();
        for f in &self.facts {
            allows.insert(f.path.clone(), f.allows.clone());
        }
        let mut g =
            CallGraph { nodes: self.nodes, edges, unresolved, n_external, scope_mutations, allows };
        g.edges.sort_by_key(|e| (e.caller, e.callee, e.line, e.tok));
        g.unresolved.sort_by(|a, b| (a.caller, a.line, &a.name).cmp(&(b.caller, b.line, &b.name)));
        g.scope_mutations.sort_by(|a, b| {
            (a.node, a.line, a.col, &a.method).cmp(&(b.node, b.line, b.col, &b.method))
        });
        g
    }

    fn index_types(&mut self) {
        for f in &self.facts {
            let krate = crate_of(&f.path);
            for (name, st) in &f.structs {
                self.structs
                    .entry(name.clone())
                    .or_default()
                    .push((krate.clone(), st.fields.clone()));
            }
            for (name, ty) in &f.statics {
                self.statics.entry(name.clone()).or_default().push((krate.clone(), ty.clone()));
            }
        }
    }

    /// Create one node per extracted fn, in sorted-id order with
    /// deterministic `#N` suffixes for collisions.
    fn create_nodes(&mut self) {
        // Gather (id, fact, fn) triples, sort by (id, file, line) so the
        // suffixing is deterministic, then materialize.
        let mut triples: Vec<(String, usize, usize)> = Vec::new();
        for (fi, f) in self.facts.iter().enumerate() {
            let krate = crate_of(&f.path);
            let fmod = file_modpath(&f.path);
            for (ri, r) in f.fns.iter().enumerate() {
                let mut segs = vec![krate.clone()];
                segs.extend(fmod.iter().cloned());
                segs.extend(r.modpath.iter().cloned());
                if let Some(ctx) = &r.impl_ctx {
                    match &ctx.trait_name {
                        Some(tr) => segs.push(format!("<{} as {}>", ctx.ty, tr)),
                        None => segs.push(ctx.ty.clone()),
                    }
                }
                segs.push(r.name.clone());
                triples.push((segs.join("::"), fi, ri));
            }
        }
        triples.sort();
        let mut prev: Option<(String, u32)> = None;
        for (id, fi, ri) in triples {
            let unique = match &mut prev {
                Some((p, n)) if *p == id => {
                    *n += 1;
                    format!("{id}#{n}")
                }
                _ => {
                    prev = Some((id.clone(), 1));
                    id.clone()
                }
            };
            let f = &self.facts[fi];
            let r = &f.fns[ri];
            let idx = self.nodes.len();
            self.nodes.push(Node {
                id: unique,
                file: f.path.clone(),
                line: r.line,
                krate: crate_of(&f.path),
                public: r.public,
                det: self.cfg.is_deterministic_path(&f.path),
                lib: self.cfg.panic_rules_apply(&f.path),
                panics: r.panics.clone(),
                sources: Vec::new(),
                locks: Vec::new(),
                has_scope: r.has_scope,
            });
            self.node_of.insert((fi, ri), idx);
            self.origin.push((fi, ri));
        }
        // Node ids must be sorted for binary search; the `#N` suffixing
        // preserves sortedness only within equal prefixes, so re-sort and
        // remap.
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| self.nodes[a].id.cmp(&self.nodes[b].id));
        let mut remap = vec![0usize; order.len()];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            remap[old_idx] = new_idx;
        }
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut origin = Vec::with_capacity(self.origin.len());
        for &old_idx in &order {
            nodes.push(self.nodes[old_idx].clone());
            origin.push(self.origin[old_idx]);
        }
        self.nodes = nodes;
        self.origin = origin;
        for v in self.node_of.values_mut() {
            *v = remap[*v];
        }
    }

    fn index_fns(&mut self) {
        for (idx, &(fi, ri)) in self.origin.iter().enumerate() {
            let r = &self.facts[fi].fns[ri];
            match &r.impl_ctx {
                Some(ctx) => {
                    self.methods.entry((ctx.ty.clone(), r.name.clone())).or_default().push(idx);
                    self.methods_by_name.entry(r.name.clone()).or_default().push(idx);
                }
                None => {
                    self.free_by_name.entry(r.name.clone()).or_default().push(idx);
                }
            }
        }
    }

    /// Type text of a receiver chain within `raw_fn`, plus the lock-naming
    /// owner for the final element.
    fn chain_type(
        &self,
        fi: usize,
        r: &RawFn,
        chain: &[String],
        node_id: &str,
    ) -> Option<(String, String)> {
        self.chain_type_depth(fi, r, chain, node_id, 0)
    }

    fn chain_type_depth(
        &self,
        fi: usize,
        r: &RawFn,
        chain: &[String],
        node_id: &str,
        depth: usize,
    ) -> Option<(String, String)> {
        // Deferred bindings expand into other chains; bound the recursion
        // so a self-referential `let x = x.clone();` cannot loop.
        if depth > 4 {
            return None;
        }
        let first = chain.first()?;
        let krate = crate_of(&self.facts[fi].path);
        let (mut ty, mut owner) = if let Some(t) = r.locals.get(first) {
            if t == "<closure>" {
                return None;
            }
            (t.clone(), format!("{node_id}::{first}"))
        } else if let Some(stored) = r.chain_lets.get(first).or_else(|| r.elem_lets.get(first)) {
            // `let x = <chain>.m();` / `for x in <chain>`: splice the
            // stored chain in place of the variable and re-resolve.
            let mut full = stored.clone();
            full.extend(chain[1..].iter().cloned());
            return self.chain_type_depth(fi, r, &full, node_id, depth + 1);
        } else if let Some(name) = first.strip_prefix("#call:") {
            // `f(..).m()` / `let x = f(..)`: the callee's return type.
            if r.locals.get(name).is_some_and(|t| t == "<closure>") {
                return None;
            }
            let Resolution::Hit(t) = self.resolve_direct(name, &krate, fi, usize::MAX) else {
                return None;
            };
            (self.ret_of(t)?, first.clone())
        } else if let Some(path) = first.strip_prefix("#qcall:") {
            // `a::b::f(..).m()` / `Type::new(..).m()` heads.
            let segs: Vec<String> = path.split("::").map(str::to_string).collect();
            let Resolution::Hit(t) = self.resolve_qualified(&segs, &krate, &r.impl_ctx) else {
                return None;
            };
            (self.ret_of(t)?, first.clone())
        } else if let Some(statics) = self.statics.get(first) {
            let same: Vec<&(String, String)> =
                statics.iter().filter(|(k, _)| *k == krate).collect();
            let (_, t) =
                same.first().copied().or_else(|| (statics.len() == 1).then(|| &statics[0]))?;
            (t.clone(), format!("{krate}::{first}"))
        } else if let Some(st) = self.facts[fi].statics.get(first) {
            (st.clone(), format!("{krate}::{first}"))
        } else {
            return None;
        };
        for field in &chain[1..] {
            if let Some(name) = field.strip_prefix("#mcall:") {
                // A non-transparent method hop: follow its return type.
                let Resolution::Hit(t) = self.resolve_method(name, Some(&ty), &krate) else {
                    return None;
                };
                ty = self.ret_of(t)?;
                continue;
            }
            if let Some(marker) = field.strip_prefix('#').map(|_| field.as_str()) {
                ty = apply_marker(&ty, marker)?;
                continue;
            }
            let holder = base_name(peel_all(&ty)).to_string();
            let candidates = self.structs.get(&holder)?;
            let same: Vec<&(String, BTreeMap<String, String>)> =
                candidates.iter().filter(|(k, _)| *k == krate).collect();
            let (_, fields) = same
                .first()
                .copied()
                .or_else(|| (candidates.len() == 1).then(|| &candidates[0]))?;
            ty = fields.get(field)?.clone();
            owner = format!("{holder}.{field}");
        }
        Some((ty, owner))
    }

    /// Resolve every body: produce edges, the unresolved bucket, the
    /// external count, scoped-lock mutations, and node sources/locks.
    #[allow(clippy::type_complexity)]
    fn resolve_bodies(&mut self) -> (Vec<CallEdge>, Vec<Unresolved>, usize, Vec<ScopeMutation>) {
        let mut edges = Vec::new();
        let mut unresolved = Vec::new();
        let mut n_external = 0usize;
        let mut scope_mutations = Vec::new();
        let mut node_sources: Vec<Vec<SourceSite>> = vec![Vec::new(); self.nodes.len()];
        let mut node_locks: Vec<Vec<LockEvent>> = vec![Vec::new(); self.nodes.len()];

        for idx in 0..self.nodes.len() {
            let (fi, ri) = self.origin[idx];
            let node_id = self.nodes[idx].id.clone();
            let krate = self.nodes[idx].krate.clone();
            let r = self.facts[fi].fns[ri].clone();

            // Receiver-independent sources recorded at extraction.
            for s in &r.sources {
                node_sources[idx].push(SourceSite {
                    kind: match s.kind {
                        RawSourceKind::WallClock => "wall-clock",
                        RawSourceKind::UnseededRng => "unseeded-rng",
                    },
                    what: s.what.clone(),
                    line: s.line,
                });
            }
            // `for _ in <hash-typed chain>`.
            for it in &r.for_iters {
                if let Some((ty, _)) = self.chain_type(fi, &r, &it.chain, &node_id) {
                    if is_hash_type(&ty) {
                        node_sources[idx].push(SourceSite {
                            kind: "hash-iter",
                            what: format!("for _ in {}", it.chain.join(".")),
                            line: it.line,
                        });
                    }
                }
            }

            for call in &r.calls {
                match &call.kind {
                    RawCallKind::Direct(name) => {
                        match self.resolve_direct(name, &krate, fi, ri) {
                            Resolution::Hit(t) => edges.push(CallEdge {
                                caller: idx,
                                callee: t,
                                line: call.line,
                                tok: call.tok,
                            }),
                            Resolution::Fanout(ts) => edges.extend(ts.into_iter().map(|t| {
                                CallEdge { caller: idx, callee: t, line: call.line, tok: call.tok }
                            })),
                            Resolution::External => n_external += 1,
                            Resolution::Ambiguous(c) => unresolved.push(Unresolved {
                                caller: idx,
                                name: name.clone(),
                                line: call.line,
                                candidates: c,
                            }),
                        }
                    }
                    RawCallKind::Qualified(segs) => {
                        match self.resolve_qualified(segs, &krate, &r.impl_ctx) {
                            Resolution::Hit(t) => edges.push(CallEdge {
                                caller: idx,
                                callee: t,
                                line: call.line,
                                tok: call.tok,
                            }),
                            Resolution::Fanout(ts) => edges.extend(ts.into_iter().map(|t| {
                                CallEdge { caller: idx, callee: t, line: call.line, tok: call.tok }
                            })),
                            Resolution::External => n_external += 1,
                            Resolution::Ambiguous(c) => unresolved.push(Unresolved {
                                caller: idx,
                                name: segs.join("::"),
                                line: call.line,
                                candidates: c,
                            }),
                        }
                    }
                    RawCallKind::Method { name, chain } => {
                        let typed = chain
                            .as_ref()
                            .and_then(|ch| self.chain_type(fi, &r, ch, &node_id).map(|t| (ch, t)));
                        // Receiver-dependent taint sources and lock events.
                        if let Some((ch, (ty, owner))) = &typed {
                            if HASH_ITER_METHODS.contains(&name.as_str()) && is_hash_type(ty) {
                                node_sources[idx].push(SourceSite {
                                    kind: "hash-iter",
                                    what: format!("{}.{}()", ch.join("."), name),
                                    line: call.line,
                                });
                            }
                            if LOCK_METHODS.contains(&name.as_str()) {
                                if let Some(_fam) = is_lock_type(ty) {
                                    node_locks[idx].push(LockEvent {
                                        lock: owner.clone(),
                                        op: name.clone(),
                                        line: call.line,
                                        tok: call.tok,
                                        held_until: call.held_until,
                                        in_scope: call.in_scope,
                                        in_scope_spawn: call.in_scope_spawn,
                                    });
                                    if call.in_scope {
                                        node_sources[idx].push(SourceSite {
                                            kind: "lock-order",
                                            what: format!("{owner} acquired under thread::scope"),
                                            line: call.line,
                                        });
                                    }
                                }
                            }
                        }
                        if CHANNEL_METHODS.contains(&name.as_str()) {
                            node_sources[idx].push(SourceSite {
                                kind: "channel-order",
                                what: format!(".{name}()"),
                                line: call.line,
                            });
                        }
                        let recv_ty = typed.as_ref().map(|(_, (ty, _))| ty.as_str());
                        match self.resolve_method(name, recv_ty, &krate) {
                            Resolution::Hit(t) => edges.push(CallEdge {
                                caller: idx,
                                callee: t,
                                line: call.line,
                                tok: call.tok,
                            }),
                            Resolution::Fanout(ts) => edges.extend(ts.into_iter().map(|t| {
                                CallEdge { caller: idx, callee: t, line: call.line, tok: call.tok }
                            })),
                            Resolution::External => n_external += 1,
                            Resolution::Ambiguous(c) => unresolved.push(Unresolved {
                                caller: idx,
                                name: format!(".{name}"),
                                line: call.line,
                                candidates: c,
                            }),
                        }
                    }
                }
            }

            // Order-sensitive collection under a scoped-spawn lock guard:
            // a mutation call whose token falls inside a held range.
            for lock in &node_locks[idx] {
                if !lock.in_scope_spawn {
                    continue;
                }
                for call in &r.calls {
                    let RawCallKind::Method { name, .. } = &call.kind else { continue };
                    if !["push", "insert", "extend"].contains(&name.as_str()) {
                        continue;
                    }
                    if call.tok > lock.tok && call.tok <= lock.held_until {
                        scope_mutations.push(ScopeMutation {
                            node: idx,
                            method: name.clone(),
                            lock: lock.lock.clone(),
                            line: call.line,
                            col: call.col,
                        });
                    }
                }
            }
        }

        for (idx, sources) in node_sources.into_iter().enumerate() {
            let mut s = sources;
            s.sort_by(|a, b| (a.line, a.kind, &a.what).cmp(&(b.line, b.kind, &b.what)));
            s.dedup_by(|a, b| a.line == b.line && a.kind == b.kind && a.what == b.what);
            self.nodes[idx].sources = s;
        }
        for (idx, locks) in node_locks.into_iter().enumerate() {
            self.nodes[idx].locks = locks;
        }
        (edges, unresolved, n_external, scope_mutations)
    }

    /// `ri` is the calling fn's index, or `usize::MAX` when resolving a
    /// `#call:` chain head (no self-exclusion or closure shadowing then —
    /// the chain-typing caller checks its own locals).
    fn resolve_direct(&self, name: &str, krate: &str, fi: usize, ri: usize) -> Resolution {
        // Calling a local closure: its body's call sites are already
        // attributed to the enclosing function, so the invocation itself
        // resolves nowhere in the workspace.
        if self.facts[fi]
            .fns
            .get(ri)
            .is_some_and(|f| f.locals.get(name).is_some_and(|t| t == "<closure>"))
        {
            return Resolution::External;
        }
        let Some(cands) = self.free_by_name.get(name) else {
            return Resolution::External;
        };
        // Prefer same file, then same crate, then a unique global match.
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| self.origin[c].0 == fi && self.origin[c].1 != ri)
            .collect();
        if same_file.len() == 1 {
            return Resolution::Hit(same_file[0]);
        }
        if same_file.len() > 1 {
            return Resolution::Ambiguous(same_file);
        }
        let same_crate: Vec<usize> =
            cands.iter().copied().filter(|&c| self.nodes[c].krate == krate).collect();
        match same_crate.len() {
            1 => return Resolution::Hit(same_crate[0]),
            n if n > 1 => return Resolution::Ambiguous(same_crate),
            _ => {}
        }
        match cands.len() {
            0 => Resolution::External,
            1 => Resolution::Hit(cands[0]),
            _ => Resolution::Ambiguous(cands.clone()),
        }
    }

    fn resolve_qualified(&self, segs: &[String], krate: &str, ctx: &Option<ImplCtx>) -> Resolution {
        let Some((name, prefix)) = segs.split_last() else {
            return Resolution::External;
        };
        // Obvious std/vendored roots are external without lookup.
        if let Some(first) = prefix.first() {
            if [
                "std",
                "core",
                "alloc",
                "String",
                "Vec",
                "Box",
                "Arc",
                "Rc",
                "HashMap",
                "HashSet",
                "BTreeMap",
                "BTreeSet",
                "VecDeque",
                "Option",
                "Result",
                "Instant",
                "Duration",
                "SystemTime",
                "PathBuf",
                "Path",
                "f32",
                "f64",
                "u8",
                "u16",
                "u32",
                "u64",
                "usize",
                "i8",
                "i16",
                "i32",
                "i64",
                "isize",
                "char",
                "str",
            ]
            .contains(&first.as_str())
            {
                return Resolution::External;
            }
        }
        // `Self::name` → method on the impl type.
        let type_hint = match prefix.last() {
            Some(s) if s == "Self" => ctx.as_ref().map(|c| c.ty.clone()),
            Some(s) if s.chars().next().is_some_and(char::is_uppercase) => Some(s.clone()),
            _ => None,
        };
        // Crate hint from the path root.
        let crate_hint = match prefix.first().map(String::as_str) {
            Some("crate") | Some("self") | Some("super") | Some("Self") => Some(krate.to_string()),
            Some(root) => root.strip_prefix("smn_").map(|r| r.replace('_', "-")),
            None => None,
        };
        if let Some(ty) = type_hint {
            let Some(cands) = self.methods.get(&(ty.clone(), name.clone())) else {
                return Resolution::External;
            };
            return self.prefer_crate(cands, crate_hint.as_deref().unwrap_or(krate));
        }
        let Some(cands) = self.free_by_name.get(name) else {
            return Resolution::External;
        };
        // Module hint: the last lowercase path segment should appear in
        // the candidate's id.
        let mod_hint = prefix
            .iter()
            .rev()
            .find(|s| {
                s.chars().next().is_some_and(char::is_lowercase)
                    && !["crate", "self", "super"].contains(&s.as_str())
                    && !s.starts_with("smn_")
            })
            .cloned();
        let filtered: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                let node = &self.nodes[c];
                let crate_ok = crate_hint.as_deref().is_none_or(|k| node.krate == k);
                let mod_ok =
                    mod_hint.as_deref().is_none_or(|m| node.id.split("::").any(|seg| seg == m));
                crate_ok && mod_ok
            })
            .collect();
        match filtered.len() {
            0 => Resolution::External,
            1 => Resolution::Hit(filtered[0]),
            _ => self.prefer_crate(&filtered, crate_hint.as_deref().unwrap_or(krate)),
        }
    }

    fn resolve_method(&self, name: &str, recv_ty: Option<&str>, krate: &str) -> Resolution {
        let res = if let Some(ty) = recv_ty {
            let base = base_name(peel_all(ty)).to_string();
            match self.methods.get(&(base, name.to_string())) {
                Some(cands) => self.prefer_crate(cands, krate),
                None => Resolution::External,
            }
        } else if COMMON_STD_METHODS.contains(&name) {
            // Untypeable receiver on a ubiquitous std name: a single
            // workspace `len` must not capture every `x.len()`.
            Resolution::External
        } else {
            match self.methods_by_name.get(name) {
                Some(cands) if cands.len() == 1 => Resolution::Hit(cands[0]),
                Some(cands) => Resolution::Ambiguous(cands.clone()),
                None => Resolution::External,
            }
        };
        // Single-trait dispatch: every candidate implements (or declares)
        // one trait's method, so the call is dynamic dispatch over that
        // trait — take every impl as a callee rather than guessing one.
        if let Resolution::Ambiguous(cands) = &res {
            if self.single_trait_dispatch(cands) {
                return Resolution::Fanout(cands.clone());
            }
        }
        res
    }

    /// True when all candidate methods belong to one trait: each is either
    /// an `impl Trait for Type` method or the trait's own declaration /
    /// default body.
    fn single_trait_dispatch(&self, cands: &[usize]) -> bool {
        let mut trait_name: Option<&str> = None;
        for &c in cands {
            let (fi, ri) = self.origin[c];
            let Some(ctx) = self.facts[fi].fns[ri].impl_ctx.as_ref() else {
                return false;
            };
            let name = ctx.trait_name.as_deref().unwrap_or(ctx.ty.as_str());
            match trait_name {
                Some(t) if t != name => return false,
                _ => trait_name = Some(name),
            }
        }
        // At least one real `impl .. for ..` must anchor the group; a set
        // of inherent methods on one type never reaches here (they would
        // have resolved), but guard anyway.
        cands.iter().any(|&c| {
            let (fi, ri) = self.origin[c];
            self.facts[fi].fns[ri].impl_ctx.as_ref().is_some_and(|x| x.trait_name.is_some())
        })
    }

    /// Return type of a node's underlying fn, when recorded.
    fn ret_of(&self, node: usize) -> Option<String> {
        let (fi, ri) = self.origin[node];
        self.facts[fi].fns[ri].ret.clone()
    }

    fn prefer_crate(&self, cands: &[usize], krate: &str) -> Resolution {
        match cands.len() {
            0 => Resolution::External,
            1 => Resolution::Hit(cands[0]),
            _ => {
                let same: Vec<usize> =
                    cands.iter().copied().filter(|&c| self.nodes[c].krate == krate).collect();
                match same.len() {
                    1 => Resolution::Hit(same[0]),
                    0 => Resolution::Ambiguous(cands.to_vec()),
                    _ => Resolution::Ambiguous(same),
                }
            }
        }
    }
}

enum Resolution {
    Hit(usize),
    /// Trait dynamic dispatch: edges to every implementation.
    Fanout(Vec<usize>),
    External,
    Ambiguous(Vec<usize>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        build(&owned, &Config::default())
    }

    #[test]
    fn direct_and_cross_file_resolution() {
        let g = graph(&[
            ("crates/core/src/lib.rs", "pub fn entry() { helper(); }\nfn helper() {}\n"),
            ("crates/te/src/solver.rs", "pub fn solve() { smn_core::entry(); }\n"),
        ]);
        let entry = g.index_of("core::entry").expect("entry node");
        let helper = g.index_of("core::helper").expect("helper node");
        let solve = g.index_of("te::solver::solve").expect("solve node");
        assert!(g.edges.iter().any(|e| e.caller == entry && e.callee == helper));
        assert!(g.edges.iter().any(|e| e.caller == solve && e.callee == entry));
    }

    #[test]
    fn method_resolution_by_receiver_type() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            "pub struct Engine { pub gauge: u64 }\n\
             impl Engine {\n    pub fn tick(&self) { self.advance(); }\n    fn advance(&self) {}\n}\n\
             pub fn run(e: Engine) { e.tick(); }\n",
        )]);
        let tick = g.index_of("core::Engine::tick").unwrap();
        let advance = g.index_of("core::Engine::advance").unwrap();
        let run = g.index_of("core::run").unwrap();
        assert!(g.edges.iter().any(|e| e.caller == tick && e.callee == advance));
        assert!(g.edges.iter().any(|e| e.caller == run && e.callee == tick));
    }

    #[test]
    fn ambiguous_methods_land_in_unresolved_bucket() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            "pub struct A;\npub struct B;\n\
             impl A { pub fn step(&self) {} }\n\
             impl B { pub fn step(&self) {} }\n\
             pub fn go(x: Untyped) { x.field.step(); }\n",
        )]);
        assert_eq!(g.unresolved.len(), 1);
        assert_eq!(g.unresolved[0].name, ".step");
        assert_eq!(g.unresolved[0].candidates.len(), 2);
    }

    #[test]
    fn common_std_methods_do_not_unique_resolve() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            "pub struct Q;\nimpl Q { pub fn len(&self) -> usize { 0 } }\n\
             pub fn f() { mystery().len(); }\n",
        )]);
        assert!(g.unresolved.is_empty());
        assert!(g.edges.iter().all(|e| { g.nodes[e.callee].id != "core::Q::len" }));
    }

    #[test]
    fn hash_iter_source_requires_hash_type() {
        let g = graph(&[(
            "crates/coverage/src/lib.rs",
            "pub fn a(m: HashMap<u32, u32>) { for v in m.values() { drop(v); } }\n\
             pub fn b(v: Vec<u32>) { for x in v.iter() { drop(x); } }\n",
        )]);
        let a = g.index_of("coverage::a").unwrap();
        let b = g.index_of("coverage::b").unwrap();
        assert!(g.nodes[a].sources.iter().any(|s| s.kind == "hash-iter"));
        assert!(g.nodes[b].sources.iter().all(|s| s.kind != "hash-iter"));
    }

    #[test]
    fn lock_events_use_type_field_identity() {
        let g = graph(&[(
            "crates/obs/src/lib.rs",
            "pub struct Hub { tracer: Mutex<u64>, metrics: Mutex<u64> }\n\
             impl Hub {\n    pub fn record(&self) {\n        let t = self.tracer.lock();\n        self.metrics.lock().checked_add(1);\n    }\n}\n",
        )]);
        let rec = g.index_of("obs::Hub::record").unwrap();
        let locks: Vec<&str> = g.nodes[rec].locks.iter().map(|l| l.lock.as_str()).collect();
        assert_eq!(locks, vec!["Hub.tracer", "Hub.metrics"]);
        // First guard is let-bound and outlives the second acquisition.
        assert!(g.nodes[rec].locks[0].held_until > g.nodes[rec].locks[1].tok);
    }

    #[test]
    fn scoped_lock_is_order_source_and_mutation_flagged() {
        let g = graph(&[(
            "crates/coverage/src/lib.rs",
            "pub fn fan_out(results: Mutex<Vec<u64>>) {\n    std::thread::scope(|s| {\n        s.spawn(|| { results.lock().push(1); });\n    });\n}\n",
        )]);
        let f = g.index_of("coverage::fan_out").unwrap();
        assert!(g.nodes[f].sources.iter().any(|s| s.kind == "lock-order"));
        assert_eq!(g.scope_mutations.len(), 1);
        assert_eq!(g.scope_mutations[0].method, "push");
    }

    #[test]
    fn canonical_json_is_stable_and_sorted() {
        let files = [("crates/core/src/lib.rs", "pub fn z() { a(); }\npub fn a() {}\n")];
        let g1 = graph(&files);
        let g2 = graph(&files);
        let j1 = g1.to_canonical_json();
        assert_eq!(j1, g2.to_canonical_json());
        let a_pos = j1.find("core::a").unwrap();
        let z_pos = j1.find("core::z").unwrap();
        assert!(a_pos < z_pos, "functions sorted by id");
        assert!(j1.contains("\"kind\": \"callgraph\""));
    }

    #[test]
    fn call_result_lets_type_through_return_types() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            "pub struct Engine;\n\
             impl Engine {\n    pub fn new() -> Self { Engine }\n    pub fn tick(&self) {}\n}\n\
             pub fn make() -> Engine { Engine }\n\
             pub fn a() { let e = make(); e.tick(); }\n\
             pub fn b() { Engine::new().tick(); }\n",
        )]);
        let tick = g.index_of("core::Engine::tick").unwrap();
        let a = g.index_of("core::a").unwrap();
        let b = g.index_of("core::b").unwrap();
        assert!(g.edges.iter().any(|e| e.caller == a && e.callee == tick));
        assert!(g.edges.iter().any(|e| e.caller == b && e.callee == tick));
    }

    #[test]
    fn indexed_receivers_and_closure_params_use_element_types() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            "pub struct Engine;\n\
             impl Engine { pub fn tick(&self) {} }\n\
             pub fn a(rs: Vec<Engine>) { rs[0].tick(); }\n\
             pub fn b(rs: Vec<Engine>) { let n: Vec<u32> = rs.iter().map(|r| { r.tick(); 1 }).collect(); }\n",
        )]);
        let tick = g.index_of("core::Engine::tick").unwrap();
        let a = g.index_of("core::a").unwrap();
        let b = g.index_of("core::b").unwrap();
        assert!(g.edges.iter().any(|e| e.caller == a && e.callee == tick));
        assert!(g.edges.iter().any(|e| e.caller == b && e.callee == tick));
    }

    #[test]
    fn if_let_some_bindings_type_the_option_payload() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            "pub struct Engine;\n\
             impl Engine { pub fn tick(&mut self) {} }\n\
             pub fn run(inj: Option<Engine>) {\n\
                 let mut inj = inj;\n\
                 if let Some(e) = inj.as_mut() { e.tick(); }\n\
             }\n",
        )]);
        let tick = g.index_of("core::Engine::tick").unwrap();
        let run = g.index_of("core::run").unwrap();
        assert!(g.edges.iter().any(|e| e.caller == run && e.callee == tick));
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn map_get_marker_types_the_value() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            "pub struct Model;\n\
             impl Model { pub fn predict(&self) -> f64 { 0.0 } }\n\
             pub fn f(index: HashMap<u32, Model>) {\n\
                 if let Some(m) = index.get(&1) { m.predict(); }\n\
             }\n",
        )]);
        let predict = g.index_of("core::Model::predict").unwrap();
        let f = g.index_of("core::f").unwrap();
        assert!(g.edges.iter().any(|e| e.caller == f && e.callee == predict));
    }

    #[test]
    fn node_id_collisions_get_deterministic_suffixes() {
        let g = graph(&[
            ("crates/core/src/main.rs", "fn boot() {}\n"),
            ("crates/core/src/bin/alt.rs", "fn boot() {}\n"),
        ]);
        let ids: Vec<&str> = g.nodes.iter().map(|n| n.id.as_str()).collect();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }
}
