//! The deep pass: whole-workspace call-graph analyses behind
//! `smn-lint --deep`.
//!
//! Orchestrates [`crate::graph`] (build + canonical artifact),
//! [`crate::taint`] (determinism taint), [`crate::reach`]
//! (panic reachability vs. the committed baseline), and [`crate::locks`]
//! (lock-order cycles, scoped-collection order). The unresolved call
//! bucket is surfaced as warn findings (`deep/unresolved-call`) when the
//! ambiguity is *consequential* — some candidate transitively carries
//! panic sites, nondeterminism sources, or lock events, so picking the
//! wrong edge could change an analysis verdict. Inert ambiguity (e.g.
//! three `.index` accessors that all just return a field) is recorded in
//! `callgraph.json`'s `unresolved` array but not reported; the graph's
//! blind spots are part of the artifact, never silently dropped.
//!
//! [`analyze_files`] is pure over `(path, source)` pairs so tests and
//! the fixture corpus can run the whole pass in memory;
//! [`analyze_workspace`] is the filesystem wrapper the CLI uses.

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

use serde::{Serialize, Value};

use crate::config::Config;
use crate::diag::{Diagnostic, Level, Report};
use crate::graph::{self, CallGraph};
use crate::reach::{self, Witness};
use crate::{locks, source, taint};

/// Rule id for ambiguous call sites.
pub const UNRESOLVED_RULE: &str = "deep/unresolved-call";

/// Deep-pass options.
#[derive(Debug, Clone, Default)]
pub struct DeepOptions {
    /// Committed panic baseline (`panic-baseline.txt`), when in force.
    pub baseline: Option<BTreeMap<String, usize>>,
}

/// Machine-readable summary of one deep run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DeepSummary {
    /// Workspace functions in the graph.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Ambiguous call sites (see `callgraph.json` for candidates).
    pub unresolved: usize,
    /// Call sites matching no workspace function (std / vendored).
    pub external: usize,
    /// Deterministic endpoints checked by the taint analysis.
    pub det_endpoints: usize,
    /// Public library API functions that can reach a panic, per crate.
    pub panic_per_crate: BTreeMap<String, usize>,
    /// Shortest panic witness per reachable endpoint.
    pub panic_witnesses: Vec<Witness>,
}

/// Everything one deep run produces.
#[derive(Debug, Clone, Default)]
pub struct DeepResult {
    /// Findings, sorted and counted.
    pub report: Report,
    /// Run summary (serialized into the JSON report).
    pub summary: DeepSummary,
    /// Canonical callgraph artifact bytes.
    pub callgraph_json: String,
}

impl DeepResult {
    /// Human rendering: findings plus the summary lines.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.report.findings {
            out.push_str(&d.render());
            out.push('\n');
        }
        let s = &self.summary;
        out.push_str(&format!(
            "smn-lint --deep: {} function(s), {} edge(s), {} unresolved, {} external\n",
            s.functions, s.edges, s.unresolved, s.external
        ));
        out.push_str(&format!(
            "  determinism: {} endpoint(s) checked; panic-reachable public APIs: {}\n",
            s.det_endpoints,
            s.panic_per_crate.values().sum::<usize>()
        ));
        out.push_str(&format!(
            "  findings: {} deny, {} warn\n",
            self.report.deny, self.report.warn
        ));
        out
    }

    /// JSON rendering: the findings report wrapped with the summary.
    #[must_use]
    pub fn to_json(&self) -> String {
        let root = Value::Map(vec![
            ("report".to_string(), self.report.to_value()),
            ("summary".to_string(), self.summary.to_value()),
        ]);
        serde_json::to_string_pretty(&root).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

/// Run the deep pass over in-memory `(path, source)` pairs.
#[must_use]
pub fn analyze_files(files: &[(String, String)], cfg: &Config, opts: &DeepOptions) -> DeepResult {
    let g = graph::build(files, cfg);
    let mut findings = Vec::new();

    let (taint_findings, det_endpoints) = taint::run(&g, cfg);
    findings.extend(taint_findings);

    let reach = reach::run(&g, cfg, opts.baseline.as_ref());
    findings.extend(reach.findings);

    findings.extend(locks::run(&g, cfg));
    findings.extend(unresolved_findings(&g, cfg));

    let summary = DeepSummary {
        functions: g.nodes.len(),
        edges: g.edges.len(),
        unresolved: g.unresolved.len(),
        external: g.n_external,
        det_endpoints,
        panic_per_crate: reach.per_crate,
        panic_witnesses: reach.witnesses,
    };
    DeepResult {
        report: Report::from_findings(findings),
        summary,
        callgraph_json: g.to_canonical_json(),
    }
}

/// Run the deep pass over the workspace at `root`.
#[must_use]
pub fn analyze_workspace(root: &Path, cfg: &Config, opts: &DeepOptions) -> DeepResult {
    let mut paths = Vec::new();
    let mut dir_errors = Vec::new();
    source::collect_rs(&root.join("crates"), &mut paths, &mut dir_errors);
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if let Ok(src) = std::fs::read_to_string(&path) {
            files.push((rel, src));
        }
        // Unreadable files/dirs are the source engine's `source/unparsed`
        // findings; the deep pass analyzes what is readable.
    }
    analyze_files(&files, cfg, opts)
}

/// Nodes whose behavior the analyses care about: the function itself, or
/// anything it can reach, carries panic sites, nondeterminism sources, or
/// lock events. Computed as backward propagation from those seeds.
fn consequential_nodes(g: &CallGraph) -> Vec<bool> {
    let mut interesting: Vec<bool> = g
        .nodes
        .iter()
        .map(|n| !n.panics.is_empty() || !n.sources.is_empty() || !n.locks.is_empty())
        .collect();
    let inadj = g.in_adjacency();
    let mut queue: VecDeque<usize> = (0..g.nodes.len()).filter(|&i| interesting[i]).collect();
    while let Some(cur) = queue.pop_front() {
        for &caller in &inadj[cur] {
            if !interesting[caller] {
                interesting[caller] = true;
                queue.push_back(caller);
            }
        }
    }
    interesting
}

/// Warn findings for the consequential part of the unresolved bucket.
fn unresolved_findings(g: &CallGraph, cfg: &Config) -> Vec<Diagnostic> {
    let level = cfg.level(UNRESOLVED_RULE).unwrap_or(Level::Warn);
    let consequential = consequential_nodes(g);
    let mut findings = Vec::new();
    for u in &g.unresolved {
        let node = &g.nodes[u.caller];
        if g.waived(&node.file, UNRESOLVED_RULE, u.line) {
            continue;
        }
        // Ambiguity between candidates that neither panic, produce
        // nondeterminism, nor touch locks (directly or transitively)
        // cannot change any verdict; it stays in the artifact only.
        if !u.candidates.iter().any(|&c| consequential[c]) {
            continue;
        }
        let cands: Vec<&str> = u.candidates.iter().map(|&c| g.nodes[c].id.as_str()).collect();
        findings.push(
            Diagnostic::new(
                UNRESOLVED_RULE,
                level,
                &node.file,
                u.line,
                1,
                format!(
                    "call `{}` in `{}` is ambiguous: {} workspace candidates ({})",
                    u.name,
                    node.id,
                    cands.len(),
                    cands.join(", ")
                ),
            )
            .with_note(
                "qualify the call or type the receiver so the graph can resolve it; \
                 the candidates are recorded in callgraph.json"
                    .to_string(),
            ),
        );
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect()
    }

    #[test]
    fn deep_run_is_byte_identical_across_repeats() {
        let fs = files(&[
            ("crates/coverage/src/lib.rs", "pub fn evaluate() { smn_core::stamp(); }\n"),
            (
                "crates/core/src/util.rs",
                "pub fn stamp(v: Vec<u64>) -> u64 { let t = SystemTime::now(); v[0] }\n",
            ),
        ]);
        let cfg = Config::default();
        let a = analyze_files(&fs, &cfg, &DeepOptions::default());
        let b = analyze_files(&fs, &cfg, &DeepOptions::default());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.callgraph_json, b.callgraph_json);
        assert!(a.report.findings.iter().any(|d| d.rule == taint::RULE));
    }

    #[test]
    fn consequential_unresolved_bucket_is_reported() {
        // One candidate can panic, so the ambiguity could hide a
        // panic-reachability edge: report it.
        let r = analyze_files(
            &files(&[(
                "crates/core/src/lib.rs",
                "pub struct A;\npub struct B;\n\
                 impl A { pub fn step(&self) { self.inner.unwrap(); } }\n\
                 impl B { pub fn step(&self) {} }\n\
                 pub fn go(x: Untyped) { x.field.step(); }\n",
            )]),
            &Config::default(),
            &DeepOptions::default(),
        );
        let u: Vec<_> = r.report.findings.iter().filter(|d| d.rule == UNRESOLVED_RULE).collect();
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].level, Level::Warn);
        assert!(u[0].message.contains("2 workspace candidates"));
        assert_eq!(r.summary.unresolved, 1);
        assert!(r.callgraph_json.contains("\"unresolved\""));
    }

    #[test]
    fn inert_ambiguity_stays_in_the_artifact_without_a_finding() {
        // Neither candidate panics, produces nondeterminism, or locks:
        // the bucket entry is recorded in callgraph.json but no finding
        // is emitted.
        let r = analyze_files(
            &files(&[(
                "crates/core/src/lib.rs",
                "pub struct A;\npub struct B;\n\
                 impl A { pub fn step(&self) {} }\n\
                 impl B { pub fn step(&self) {} }\n\
                 pub fn go(x: Untyped) { x.field.step(); }\n",
            )]),
            &Config::default(),
            &DeepOptions::default(),
        );
        assert!(r.report.findings.iter().all(|d| d.rule != UNRESOLVED_RULE));
        assert_eq!(r.summary.unresolved, 1);
        assert!(r.callgraph_json.contains("\"unresolved\""));
    }

    #[test]
    fn summary_counts_match_graph() {
        let r = analyze_files(
            &files(&[(
                "crates/core/src/lib.rs",
                "pub fn a() { b(); }\npub fn b() { String::new(); }\n",
            )]),
            &Config::default(),
            &DeepOptions::default(),
        );
        assert_eq!(r.summary.functions, 2);
        assert_eq!(r.summary.edges, 1);
        assert_eq!(r.summary.external, 1);
    }
}
