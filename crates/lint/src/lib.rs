//! `smn-lint` — workspace static analysis for the SMN control plane.
//!
//! Two engines share one diagnostic currency ([`diag::Report`]):
//!
//! - the **source engine** ([`source`]) lexes every workspace crate with
//!   the spanned token stream from the vendored `syn` and enforces the
//!   determinism / panic-freedom / narrowing-cast rules configured in
//!   [`config::Config`];
//! - the **artifact engine** ([`artifact`]) statically validates
//!   serialized domain artifacts (CDGs, topologies, fault campaigns,
//!   coarsening partitions) against the workspace's own serde types.
//!
//! Both are pure functions over the filesystem: no network, no build, no
//! macro expansion. CI runs `smn-lint --workspace --artifacts artifacts`
//! and gates on deny-level findings; see DESIGN.md §7.

pub mod artifact;
pub mod config;
pub mod deep;
pub mod diag;
pub mod graph;
pub mod locks;
pub mod reach;
pub mod scan;
pub mod source;
pub mod taint;

use std::path::{Path, PathBuf};

use config::Config;
use diag::Report;

/// Walk up from `start` to the first directory holding a `Cargo.toml`
/// that declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Run the source engine over the workspace at `root`.
#[must_use]
pub fn run_source(root: &Path, cfg: &Config) -> Report {
    let (findings, files_scanned) = source::scan_workspace(root, cfg);
    let mut report = Report::from_findings(findings);
    report.files_scanned = files_scanned;
    report
}

/// Run the artifact engine over every `*.json` under `dir`.
#[must_use]
pub fn run_artifacts(root: &Path, dir: &Path) -> Report {
    let (findings, artifacts_checked) = artifact::check_dir(root, dir);
    let mut report = Report::from_findings(findings);
    report.artifacts_checked = artifacts_checked;
    report
}
