//! Shared token-scan machinery for the source engine and the deep pass.
//!
//! Both the per-file source rules ([`crate::source`]) and the call-graph
//! extractor ([`crate::graph`]) walk the same spanned token streams and
//! need the same three services: structured navigation (matching brackets,
//! item extents), *test-region* detection (anything under a `test`
//! attribute is exempt from production rules), and *allow-annotation*
//! parsing (`// smn-lint: allow(rule) -- reason`). Keeping them here means
//! the deep pass cannot drift from the waiver semantics the per-file
//! engine already enforces.

use syn::Token;

/// One allow annotation's effect: `rule` waived on lines `start..=end`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The waived rule id (or `"all"`).
    pub rule: String,
    /// First covered line (1-based, inclusive).
    pub start: u32,
    /// Last covered line (inclusive).
    pub end: u32,
}

/// A problem found while parsing annotations (fed back as findings by the
/// source engine; the deep pass ignores them — they are already reported).
#[derive(Debug, Clone)]
pub struct AllowIssue {
    /// Which annotation rule fired: `missing-reason` or `unknown-rule`.
    pub kind: AllowIssueKind,
    /// Line of the annotation comment.
    pub line: u32,
    /// Column of the annotation comment.
    pub col: u32,
    /// Human message.
    pub message: String,
}

/// The two ways an annotation itself can be wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowIssueKind {
    /// `allow(...)` without a `-- reason` tail.
    MissingReason,
    /// Unparseable annotation or a rule id that does not exist.
    UnknownRule,
}

/// Index of the next non-comment token at or after `idx`.
#[must_use]
pub fn next_code(tokens: &[Token], idx: usize) -> Option<usize> {
    (idx..tokens.len()).find(|&i| !tokens[i].is_comment())
}

/// Index of the closing token matching the opener at `open` (`open_ch`
/// opens, `close_ch` closes). Returns `None` when unbalanced or `open`
/// does not hold `open_ch`.
#[must_use]
pub fn matching(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    if !tokens.get(open)?.is_punct(open_ch) {
        return None;
    }
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Last token index (inclusive) of the item starting at `start`: the
/// matching close of its first top-level `{`, or its first top-level `;`,
/// whichever comes first.
#[must_use]
pub fn item_extent(tokens: &[Token], start: usize) -> usize {
    let mut k = start;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('{') {
            return syn::matching_close(tokens, k).unwrap_or(tokens.len().saturating_sub(1));
        }
        if t.is_punct(';') {
            return k;
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Token-index ranges (inclusive) that sit under a `test` attribute
/// (`#[test]`, `#[cfg(test)]`, …, but not `#[cfg(not(test))]`).
#[must_use]
pub fn collect_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut idx = 0usize;
    while idx < tokens.len() {
        if !tokens[idx].is_punct('#') {
            idx += 1;
            continue;
        }
        let Some(open) = next_code(tokens, idx + 1) else { break };
        if !tokens[open].is_punct('[') {
            idx += 1;
            continue;
        }
        let Some(close) = matching(tokens, open, '[', ']') else { break };
        let attr = &tokens[open + 1..close];
        let has = |name: &str| attr.iter().any(|t| t.is_ident(name));
        if has("test") && !has("not") {
            let start = next_code(tokens, close + 1).unwrap_or(close);
            let end = item_extent(tokens, start);
            ranges.push((idx, end));
            idx = end + 1;
        } else {
            idx = close + 1;
        }
    }
    ranges
}

/// If `comment` is an smn-lint annotation, the text after the marker.
pub fn annotation_body(comment: &str) -> Option<&str> {
    let body = ["/*!", "/**", "/*", "//!", "///", "//"]
        .iter()
        .find_map(|p| comment.strip_prefix(p))
        .unwrap_or(comment);
    body.trim_start().strip_prefix("smn-lint:").map(str::trim)
}

/// Parse `allow(rule, ...) -- reason`: the rule list and whether a
/// non-empty reason is present.
pub fn parse_allow(body: &str) -> Result<(Vec<String>, bool), String> {
    let rest = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .ok_or_else(|| format!("unparseable smn-lint annotation: `{body}`"))?;
    let close =
        rest.find(')').ok_or_else(|| format!("unparseable smn-lint annotation: `{body}`"))?;
    let rules: Vec<String> =
        rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Err("allow annotation lists no rules".to_string());
    }
    let tail = rest[close + 1..].trim_start().trim_end_matches("*/").trim();
    let reason_ok = tail.strip_prefix("--").is_some_and(|r| !r.trim().is_empty());
    Ok((rules, reason_ok))
}

/// Collect every allow annotation in `tokens`, validating rule names via
/// `known_rule`. Reasonless allows are reported and waive nothing.
pub fn collect_allows(
    tokens: &[Token],
    known_rule: &dyn Fn(&str) -> bool,
) -> (Vec<Allow>, Vec<AllowIssue>) {
    let mut allows = Vec::new();
    let mut issues = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        let Some(body) = annotation_body(&tok.text) else { continue };
        let line = tok.span.line;
        let (rules, reason_ok) = match parse_allow(body) {
            Ok(parsed) => parsed,
            Err(msg) => {
                issues.push(AllowIssue {
                    kind: AllowIssueKind::UnknownRule,
                    line,
                    col: tok.span.col,
                    message: msg,
                });
                continue;
            }
        };
        if !reason_ok {
            issues.push(AllowIssue {
                kind: AllowIssueKind::MissingReason,
                line,
                col: tok.span.col,
                message: "allow annotation without a `-- reason`".to_string(),
            });
        }
        let (start, end) = allow_extent(tokens, idx, tok);
        for rule in rules {
            if !known_rule(&rule) {
                issues.push(AllowIssue {
                    kind: AllowIssueKind::UnknownRule,
                    line,
                    col: tok.span.col,
                    message: format!("allow annotation names unknown rule `{rule}`"),
                });
                continue;
            }
            // A reasonless allow still suppresses nothing: the waiver only
            // takes effect once it carries its justification.
            if reason_ok {
                allows.push(Allow { rule, start, end });
            }
        }
    }
    (allows, issues)
}

/// Line range an annotation at token `idx` covers: its own line for a
/// trailing comment, the next item for a standalone one, the whole file
/// for a `//!` inner comment.
fn allow_extent(tokens: &[Token], idx: usize, tok: &Token) -> (u32, u32) {
    if tok.is_inner_doc() {
        return (1, u32::MAX);
    }
    let trailing = tokens[..idx]
        .iter()
        .rev()
        .take_while(|t| t.span.line == tok.span.line)
        .any(|t| !t.is_comment());
    if trailing {
        return (tok.span.line, tok.span.line);
    }
    match next_code(tokens, idx + 1) {
        Some(next) => {
            let end_idx = item_extent(tokens, next);
            let end_line = tokens.get(end_idx).map_or(tok.span.line, |t| t.span.line);
            (tok.span.line, end_line.max(tok.span.line))
        }
        None => (tok.span.line, tok.span.line),
    }
}

/// True when `rule` is waived for `line` by any of `allows`.
#[must_use]
pub fn allowed(allows: &[Allow], rule: &str, line: u32) -> bool {
    allows.iter().any(|a| (a.rule == rule || a.rule == "all") && a.start <= line && line <= a.end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        syn::parse_file(src).expect("lex").tokens
    }

    #[test]
    fn matching_parens_and_brackets() {
        let t = toks("f(a, (b, c))[0]");
        assert!(t[matching(&t, 1, '(', ')').unwrap()].is_punct(')'));
        let open_sq = t.iter().position(|x| x.is_punct('[')).unwrap();
        assert!(t[matching(&t, open_sq, '[', ']').unwrap()].is_punct(']'));
        assert_eq!(matching(&t, 0, '(', ')'), None);
    }

    #[test]
    fn test_ranges_cover_mod_blocks() {
        let t = toks("#[cfg(test)]\nmod tests { fn f() {} }\nfn live() {}");
        let ranges = collect_test_ranges(&t);
        assert_eq!(ranges.len(), 1);
        let live = t.iter().position(|x| x.is_ident("live")).unwrap();
        assert!(ranges.iter().all(|&(s, e)| live < s || live > e));
    }

    #[test]
    fn allow_collection_validates_rules() {
        let t = toks("// smn-lint: allow(panic/unwrap) -- fine\nfn f() {}\n// smn-lint: allow(bogus) -- x\nfn g() {}");
        let known = |r: &str| r == "panic/unwrap";
        let (allows, issues) = collect_allows(&t, &known);
        assert_eq!(allows.len(), 1);
        assert!(allowed(&allows, "panic/unwrap", 2));
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].kind, AllowIssueKind::UnknownRule);
    }
}
