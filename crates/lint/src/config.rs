//! Rule configuration: which rules run at which level over which paths.
//!
//! The compiled-in [`Config::default`] encodes the SMN invariants from the
//! lint charter; a repo can override levels and path scopes by committing
//! an `.smn-lint.json` at the workspace root (the shape is this module's
//! serde model). Every rule can also be waived in-source with an
//! annotation comment:
//!
//! ```text
//! // smn-lint: allow(determinism/wall-clock) -- benches report wall time
//! ```
//!
//! which covers the next item (through its closing brace) or, as a
//! trailing comment, just its own line; as a `//!` inner comment it covers
//! the whole file. Annotations must carry a `-- reason`; a bare allow is
//! itself a deny-level finding, so waivers stay auditable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::diag::Level;

/// Every rule the source engine knows, with its charter default.
pub const SOURCE_RULES: &[(&str, Level, &str)] = &[
    (
        "determinism/unseeded-rng",
        Level::Deny,
        "entropy-seeded RNGs (thread_rng, from_entropy, OsRng) break replayable campaigns",
    ),
    (
        "determinism/wall-clock",
        Level::Deny,
        "SystemTime / Instant::now make runs time-dependent; derive time from simulation clocks",
    ),
    (
        "determinism/hash-iter",
        Level::Deny,
        "HashMap/HashSet iteration order leaks into outputs on deterministic simulation paths",
    ),
    ("panic/unwrap", Level::Deny, ".unwrap() in library code panics on fallible paths"),
    ("panic/expect", Level::Deny, ".expect() in library code panics on fallible paths"),
    (
        "panic/panic-macro",
        Level::Deny,
        "panic!/unreachable!/todo!/unimplemented! in library code aborts the control plane",
    ),
    (
        "casts/narrowing",
        Level::Deny,
        "unchecked `as` narrowing in telemetry ingest / TE hot paths silently truncates",
    ),
    (
        "annotation/missing-reason",
        Level::Deny,
        "smn-lint allow annotations must carry a `-- reason`",
    ),
    ("annotation/unknown-rule", Level::Deny, "allow annotation names a rule that does not exist"),
    (
        "source/unparsed",
        Level::Deny,
        "a source file could not be read or lexed, so its rules went unchecked",
    ),
];

/// Every rule of the deep (whole-workspace call-graph) pass, with its
/// charter default. These are known for annotation validation even when
/// `--deep` is not running, so waivers never rot into unknown-rule denies.
pub const DEEP_RULES: &[(&str, Level, &str)] = &[
    (
        "deep/determinism-taint",
        Level::Deny,
        "a declared-deterministic function transitively reaches a nondeterminism source",
    ),
    (
        "deep/panic-reachability",
        Level::Warn,
        "a public library API function can transitively reach a panic site",
    ),
    (
        "deep/panic-baseline",
        Level::Deny,
        "a crate's panic-reachable public API count exceeds the committed panic-baseline.txt",
    ),
    (
        "deep/lock-order-cycle",
        Level::Deny,
        "two code paths acquire the same locks in opposite orders (potential deadlock)",
    ),
    (
        "deep/scope-order",
        Level::Deny,
        "a lock-guarded collection is mutated from scoped spawns on a deterministic path",
    ),
    (
        "deep/unresolved-call",
        Level::Warn,
        "a call site matched several workspace candidates; the graph cannot pick one",
    ),
];

/// Rule identifiers of the artifact engine (levels are not configurable:
/// a structurally invalid artifact is always a deny).
pub const ARTIFACT_RULES: &[&str] = &[
    "artifact/unreadable",
    "artifact/unknown-kind",
    "artifact/dangling-edge",
    "artifact/dangling-node",
    "artifact/name-index",
    "artifact/layer-order",
    "artifact/missing-team",
    "artifact/team-count",
    "artifact/invalid-attr",
    "artifact/unknown-span",
    "artifact/dangling-link-ref",
    "artifact/orphan-srlg",
    "artifact/srlg-too-small",
    "artifact/taxonomy-gap",
    "artifact/unknown-target",
    "artifact/wrong-team",
    "artifact/invalid-severity",
    "artifact/duplicate-id",
    "artifact/partition-not-total",
    "artifact/empty-supernode",
    "artifact/overlapping-partition",
    "artifact/partition-mismatch",
    "artifact/dangling-stack-ref",
    "artifact/stack-layer-order",
    "artifact/unknown-fault-ref",
    "artifact/unknown-cell",
    "artifact/coverage-mismatch",
    "artifact/callgraph-order",
    "artifact/callgraph-count",
    "artifact/callgraph-ref",
    "artifact/bench-schema",
    "artifact/bench-scale",
    "artifact/negative-timing",
    "artifact/journal-schema",
    "artifact/journal-tick-order",
    "artifact/journal-dangling-pair",
    "artifact/journal-dangling-component",
    "artifact/journal-missing-hash",
];

/// The lint configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Per-rule level overrides (rule id -> level). Rules absent here run
    /// at their charter default.
    pub levels: BTreeMap<String, Level>,
    /// Path prefixes (workspace-relative, `/`-separated) whose files are
    /// *deterministic simulation paths*: `determinism/hash-iter` applies
    /// only here.
    pub deterministic_paths: Vec<String>,
    /// Path prefixes where `casts/narrowing` applies (telemetry ingest and
    /// TE hot paths).
    pub cast_paths: Vec<String>,
    /// Path prefixes exempt from the panic rules (binaries, benches, the
    /// operator CLI — crashing loudly is their correct failure mode).
    pub panic_exempt: Vec<String>,
    /// Path prefixes never scanned at all.
    pub skip: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            levels: BTreeMap::new(),
            deterministic_paths: vec![
                "crates/core/src/simulation.rs".into(),
                "crates/core/src/stream.rs".into(),
                "crates/coverage/src/".into(),
                "crates/depgraph/src/delta.rs".into(),
                "crates/heal/src/".into(),
                "crates/incident/src/sim.rs".into(),
                "crates/obs/src/".into(),
                "crates/perf/src/diff.rs".into(),
                "crates/perf/src/gate.rs".into(),
                "crates/perf/src/report.rs".into(),
                "crates/telemetry/src/".into(),
                "crates/topology/src/stack.rs".into(),
            ],
            cast_paths: vec![
                "crates/telemetry/src/".into(),
                "crates/te/src/".into(),
                "crates/datalake/src/ingest.rs".into(),
            ],
            panic_exempt: vec![
                "crates/bench/".into(),
                "crates/cli/".into(),
                "crates/lint/src/main.rs".into(),
            ],
            skip: vec![
                "vendor/".into(),
                "target/".into(),
                "crates/lint/tests/fixtures/".into(),
                "crates/lint/tests/deep_fixtures/".into(),
            ],
        }
    }
}

impl Config {
    /// Load the configuration for a workspace root: `.smn-lint.json` when
    /// present, the compiled-in defaults otherwise. A malformed config
    /// file is an error (silently falling back would un-gate CI).
    pub fn load(root: &std::path::Path) -> Result<Self, String> {
        let path = root.join(".smn-lint.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map_err(|e| format!("{}: malformed lint config: {e}", path.display())),
            Err(_) => Ok(Self::default()),
        }
    }

    /// The active level for a source rule, `None` when the rule id is
    /// unknown.
    #[must_use]
    pub fn level(&self, rule: &str) -> Option<Level> {
        if let Some(&l) = self.levels.get(rule) {
            return Some(l);
        }
        SOURCE_RULES
            .iter()
            .chain(DEEP_RULES.iter())
            .find(|(id, _, _)| *id == rule)
            .map(|&(_, l, _)| l)
    }

    /// True when `rule` names a known source, deep, or artifact rule
    /// (used to validate allow annotations).
    #[must_use]
    pub fn known_rule(&self, rule: &str) -> bool {
        SOURCE_RULES.iter().any(|(id, _, _)| *id == rule)
            || DEEP_RULES.iter().any(|(id, _, _)| *id == rule)
            || ARTIFACT_RULES.contains(&rule)
            || rule == "all"
    }

    fn matches_any(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Is `path` (workspace-relative) scanned at all?
    #[must_use]
    pub fn scanned(&self, path: &str) -> bool {
        !Self::matches_any(path, &self.skip)
    }

    /// Is `path` a deterministic simulation path?
    #[must_use]
    pub fn is_deterministic_path(&self, path: &str) -> bool {
        Self::matches_any(path, &self.deterministic_paths)
    }

    /// Does `casts/narrowing` apply to `path`?
    #[must_use]
    pub fn is_cast_path(&self, path: &str) -> bool {
        Self::matches_any(path, &self.cast_paths)
    }

    /// Do the panic rules apply to `path`? Library code only: binaries
    /// (`src/bin/`, `main.rs`), benches, tests, and exempted crates may
    /// crash loudly.
    #[must_use]
    pub fn panic_rules_apply(&self, path: &str) -> bool {
        if Self::matches_any(path, &self.panic_exempt) {
            return false;
        }
        !(path.contains("/bin/")
            || path.ends_with("main.rs")
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.starts_with("tests/")
            || path.starts_with("examples/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charter_defaults_resolve() {
        let c = Config::default();
        assert_eq!(c.level("panic/unwrap"), Some(Level::Deny));
        assert_eq!(c.level("nonsense/rule"), None);
        assert!(c.known_rule("artifact/dangling-edge"));
        assert!(!c.known_rule("artifact/bogus"));
    }

    #[test]
    fn overrides_win() {
        let mut c = Config::default();
        c.levels.insert("panic/expect".into(), Level::Warn);
        assert_eq!(c.level("panic/expect"), Some(Level::Warn));
    }

    #[test]
    fn path_scoping() {
        let c = Config::default();
        assert!(c.is_deterministic_path("crates/telemetry/src/chaos.rs"));
        assert!(c.is_deterministic_path("crates/obs/src/trace.rs"));
        assert!(!c.is_deterministic_path("crates/te/src/mcf.rs"));
        assert!(c.is_cast_path("crates/te/src/mcf.rs"));
        assert!(c.panic_rules_apply("crates/core/src/bwlogs.rs"));
        assert!(!c.panic_rules_apply("crates/bench/src/bin/table2.rs"));
        assert!(!c.panic_rules_apply("crates/cli/src/commands.rs"));
        assert!(!c.panic_rules_apply("crates/core/src/main.rs"));
        assert!(!c.scanned("vendor/rand/src/lib.rs"));
    }

    #[test]
    fn config_json_roundtrips() {
        let c = Config::default();
        let back: Config = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }
}
