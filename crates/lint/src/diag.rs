//! Diagnostics: the one currency both analysis engines deal in.
//!
//! A [`Diagnostic`] pins a rule violation to a `file:line:col` span with a
//! human message and an optional fix note. The set of findings renders two
//! ways: human-readable lines for terminals and a machine-readable JSON
//! report for CI gates (`smn-lint --json`).

use serde::{Deserialize, Serialize};

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Informational: reported, never fails the run.
    Warn,
    /// Hard failure: a deny-level finding makes `smn-lint` exit non-zero.
    Deny,
}

impl Level {
    /// Lowercase display form.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// One finding from either engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `"panic/unwrap"` or `"artifact/dangling-edge"`.
    pub rule: String,
    /// Severity under the active configuration.
    pub level: Level,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the violation (0 when the span is file-level).
    pub line: u32,
    /// 1-based column of the violation (0 when the span is file-level).
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (empty when self-evident).
    pub note: String,
}

impl Diagnostic {
    /// Build a finding.
    pub fn new(
        rule: &str,
        level: Level,
        file: &str,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Self {
        Self {
            rule: rule.to_string(),
            level,
            file: file.to_string(),
            line,
            col,
            message: message.into(),
            note: String::new(),
        }
    }

    /// Attach a fix suggestion.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// The `file:line:col: level[rule]: message` terminal rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = if self.line == 0 {
            format!("{}: {}[{}]: {}", self.file, self.level.as_str(), self.rule, self.message)
        } else {
            format!(
                "{}:{}:{}: {}[{}]: {}",
                self.file,
                self.line,
                self.col,
                self.level.as_str(),
                self.rule,
                self.message
            )
        };
        if !self.note.is_empty() {
            out.push_str(&format!("\n    note: {}", self.note));
        }
        out
    }
}

/// A full report: findings plus summary counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// All findings, in file/line order.
    pub findings: Vec<Diagnostic>,
    /// Number of deny-level findings.
    pub deny: usize,
    /// Number of warn-level findings.
    pub warn: usize,
    /// Files analyzed by the source engine.
    pub files_scanned: usize,
    /// Artifact files checked by the artifact engine.
    pub artifacts_checked: usize,
}

impl Report {
    /// Assemble a report from findings, computing counts and sorting by
    /// (file, line, col, rule) so output order is stable.
    #[must_use]
    pub fn from_findings(mut findings: Vec<Diagnostic>) -> Self {
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
        let deny = findings.iter().filter(|d| d.level == Level::Deny).count();
        let warn = findings.len() - deny;
        Self { findings, deny, warn, files_scanned: 0, artifacts_checked: 0 }
    }

    /// Merge another report's findings and counts into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
        self.deny += other.deny;
        self.warn += other.warn;
        self.files_scanned += other.files_scanned;
        self.artifacts_checked += other.artifacts_checked;
    }

    /// True when the run should exit non-zero.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.deny > 0
    }

    /// Machine-readable JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Human rendering: one block per finding plus a summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "smn-lint: {} file(s), {} artifact(s): {} deny, {} warn\n",
            self.files_scanned, self.artifacts_checked, self.deny, self.warn
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_span_and_rule() {
        let d = Diagnostic::new("panic/unwrap", Level::Deny, "crates/x/src/lib.rs", 10, 5, "m")
            .with_note("use ? instead");
        assert!(d.render().starts_with("crates/x/src/lib.rs:10:5: deny[panic/unwrap]: m"));
        assert!(d.render().contains("note: use ? instead"));
    }

    #[test]
    fn report_counts_and_sorts() {
        let r = Report::from_findings(vec![
            Diagnostic::new("b", Level::Warn, "z.rs", 1, 1, "w"),
            Diagnostic::new("a", Level::Deny, "a.rs", 2, 1, "d"),
        ]);
        assert_eq!((r.deny, r.warn), (1, 1));
        assert_eq!(r.findings[0].file, "a.rs");
        assert!(r.failed());
    }

    #[test]
    fn json_roundtrips() {
        let r = Report::from_findings(vec![Diagnostic::new(
            "determinism/wall-clock",
            Level::Deny,
            "f.rs",
            3,
            7,
            "Instant::now in deterministic path",
        )]);
        let back: Report = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back.findings[0].rule, "determinism/wall-clock");
    }
}
