//! Fixture-corpus tests for the artifact checker (satellite of the
//! static-analysis issue): each known-bad artifact must produce exactly
//! one diagnostic, with the right rule and a span pointing at the
//! offending JSON element; the known-good twins must be clean.

use std::path::PathBuf;

use smn_lint::artifact::check_str;
use smn_lint::diag::Diagnostic;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn check_fixture(name: &str) -> Vec<Diagnostic> {
    check_str(name, &fixture(name))
}

#[test]
fn good_fixtures_are_clean() {
    for name in [
        "good_cdg.json",
        "good_topology.json",
        "good_campaign.json",
        "good_coarsening.json",
        "good_remediation_plan.json",
        "good_generated_campaign.json",
        "good_bench_report.json",
        "good_delta_journal.json",
    ] {
        let out = check_fixture(name);
        assert!(out.is_empty(), "{name} should be clean, got {out:?}");
    }
}

#[test]
fn dangling_edge_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_cdg_dangling_edge.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/dangling-edge");
    // The span points at the out-of-range `dst` value inside the edge
    // record on line 18 of the fixture.
    assert_eq!((d.line, d.col), (18, 27), "span moved: {d:?}");
    assert!(d.message.contains("$.fine.graph.edges[0].dst"), "{}", d.message);
    assert!(d.message.contains("node 7"), "{}", d.message);
}

#[test]
fn non_total_partition_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_coarsening_not_total.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/partition-not-total");
    // The span points at the `members` array on line 5.
    assert_eq!((d.line, d.col), (5, 14), "span moved: {d:?}");
    assert!(d.message.contains("$.members"), "{}", d.message);
    assert!(d.message.contains('3'), "must name the uncovered node: {}", d.message);
}

#[test]
fn orphan_srlg_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_topology_orphan_srlg.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/orphan-srlg");
    // The span points at the orphaned link index inside the SRLG member
    // list on line 35.
    assert_eq!((d.line, d.col), (35, 49), "span moved: {d:?}");
    assert!(d.message.contains("$.srlgs[0].links[1]"), "{}", d.message);
}

#[test]
fn dangling_action_target_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_remediation_plan_unknown_target.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/unknown-target");
    // The span points at the action object of the offending entry on
    // line 10 of the fixture.
    assert_eq!((d.line, d.col), (10, 17), "span moved: {d:?}");
    assert!(d.message.contains("$.actions[0].action"), "{}", d.message);
    assert!(d.message.contains("ghost-9"), "{}", d.message);
}

#[test]
fn dangling_locus_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_campaign_dangling_locus.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/dangling-link-ref");
    // The span points at the out-of-range link index of the second locus
    // annotation on line 24 of the fixture.
    assert_eq!((d.line, d.col), (24, 27), "span moved: {d:?}");
    assert!(d.message.contains("$.loci[1].link"), "{}", d.message);
    assert!(d.message.contains("link 9"), "{}", d.message);
}

#[test]
fn wrong_bench_schema_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_bench_report_schema.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/bench-schema");
    // The span points at the `schema` value on line 3.
    assert_eq!((d.line, d.col), (3, 13), "span moved: {d:?}");
    assert!(d.message.contains("$.schema"), "{}", d.message);
    assert!(d.message.contains("version 2"), "{}", d.message);
}

#[test]
fn unknown_bench_scale_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_bench_report_scale.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/bench-scale");
    // The span points at the `scale` value on line 6.
    assert_eq!((d.line, d.col), (6, 12), "span moved: {d:?}");
    assert!(d.message.contains("$.scale"), "{}", d.message);
    assert!(d.message.contains("`450`"), "{}", d.message);
}

#[test]
fn duplicate_phase_path_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_bench_report_dup_phase.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/duplicate-id");
    // The span points at the second phase row on line 12.
    assert_eq!((d.line, d.col), (12, 5), "span moved: {d:?}");
    assert!(d.message.contains("$.phases[1]"), "{}", d.message);
    assert!(d.message.contains("perf/te"), "{}", d.message);
}

#[test]
fn nan_timing_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_bench_report_nan_timing.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/negative-timing");
    // The span points at the string-encoded NaN `total_ms` on line 11.
    assert_eq!((d.line, d.col), (11, 50), "span moved: {d:?}");
    assert!(d.message.contains("$.phases[0].total_ms"), "{}", d.message);
    assert!(d.message.contains("NaN"), "{}", d.message);
}

#[test]
fn non_monotone_tick_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_delta_journal_tick_order.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/journal-tick-order");
    // The span points at the repeated `tick` value of the second entry on
    // line 22.
    assert_eq!((d.line, d.col), (22, 15), "span moved: {d:?}");
    assert!(d.message.contains("$.ticks[1].tick"), "{}", d.message);
    assert!(d.message.contains("does not advance"), "{}", d.message);
}

#[test]
fn dangling_pair_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_delta_journal_dangling_pair.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/journal-dangling-pair");
    // The span points at the out-of-range pair `[9, 3]` on line 13.
    assert_eq!((d.line, d.col), (13, 25), "span moved: {d:?}");
    assert!(d.message.contains("$.ticks[0].pairs[1]"), "{}", d.message);
    assert!(d.message.contains("node 9"), "{}", d.message);
}

#[test]
fn dangling_journal_component_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_delta_journal_dangling_component.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/journal-dangling-component");
    // The span points at the dependency with the unknown endpoint on
    // line 15.
    assert_eq!((d.line, d.col), (15, 30), "span moved: {d:?}");
    assert!(d.message.contains("$.ticks[0].added_dependencies[0]"), "{}", d.message);
    assert!(d.message.contains("ghost-7"), "{}", d.message);
}

#[test]
fn missing_reconcile_hash_yields_exactly_one_diagnostic_with_span() {
    let out = check_fixture("bad_delta_journal_missing_hash.json");
    assert_eq!(out.len(), 1, "want exactly one diagnostic, got {out:?}");
    let d = &out[0];
    assert_eq!(d.rule, "artifact/journal-missing-hash");
    // The span points at the null `reconcile_hash` on line 19.
    assert_eq!((d.line, d.col), (19, 25), "span moved: {d:?}");
    assert!(d.message.contains("$.ticks[0].reconcile_hash"), "{}", d.message);
    assert!(d.message.contains("without a reconciliation hash"), "{}", d.message);
}

#[test]
fn check_dir_sees_every_fixture_and_fails_on_the_bad_ones() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let root = dir.clone();
    let (findings, checked) = smn_lint::artifact::check_dir(&root, &dir);
    assert_eq!(checked, 21, "fixture corpus size changed");
    assert_eq!(findings.len(), 13, "one finding per bad fixture: {findings:?}");
    let report = smn_lint::diag::Report::from_findings(findings);
    assert!(report.failed());
    let json = report.to_json();
    for rule in [
        "artifact/dangling-edge",
        "artifact/partition-not-total",
        "artifact/orphan-srlg",
        "artifact/unknown-target",
        "artifact/dangling-link-ref",
        "artifact/bench-schema",
        "artifact/bench-scale",
        "artifact/duplicate-id",
        "artifact/negative-timing",
        "artifact/journal-tick-order",
        "artifact/journal-dangling-pair",
        "artifact/journal-dangling-component",
        "artifact/journal-missing-hash",
    ] {
        assert!(json.contains(rule), "JSON report must carry {rule}: {json}");
    }
}
