//! Fixture corpus for the deep pass (satellite of the deep-lint issue):
//! one known-bad source fixture per interprocedural rule, each asserted
//! down to the exact rule, level, file, line, and column, plus property
//! tests that the whole pass is order-insensitive and byte-identical
//! across runs.
//!
//! Fixture sources live in `tests/deep_fixtures/*.fixture` — the
//! non-`.rs` extension keeps them out of the real workspace scan — and
//! are analyzed under *virtual* workspace paths so path-scoped policy
//! (deterministic paths, library panic rules) applies exactly as it
//! would in the tree.

use std::path::PathBuf;

use proptest::collection::vec;
use proptest::prelude::*;
use smn_lint::config::Config;
use smn_lint::deep::{analyze_files, DeepOptions, DeepResult};
use smn_lint::diag::{Diagnostic, Level};

/// `(virtual workspace path, fixture file)` — the corpus, one entry per
/// file; several files may combine into one scenario.
const CORPUS: &[(&str, &str)] = &[
    ("crates/coverage/src/lib.rs", "tainted_chain_coverage.fixture"),
    ("crates/core/src/util.rs", "tainted_chain_core.fixture"),
    ("crates/core/src/lib.rs", "panic_witness.fixture"),
    ("crates/datalake/src/store.rs", "lock_cycle.fixture"),
    ("crates/core/src/dispatch.rs", "unresolved_call.fixture"),
];

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/deep_fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn deep(entries: &[(&str, &str)]) -> DeepResult {
    let files: Vec<(String, String)> =
        entries.iter().map(|(path, name)| (path.to_string(), fixture(name))).collect();
    analyze_files(&files, &Config::default(), &DeepOptions::default())
}

fn only_rule<'r>(r: &'r DeepResult, rule: &str) -> &'r Diagnostic {
    let hits: Vec<&Diagnostic> = r.report.findings.iter().filter(|d| d.rule == rule).collect();
    assert_eq!(hits.len(), 1, "want exactly one {rule}, got {:?}", r.report.findings);
    hits[0]
}

#[test]
fn tainted_chain_fixture_yields_exact_span() {
    let r = deep(&[CORPUS[0], CORPUS[1]]);
    let d = only_rule(&r, "deep/determinism-taint");
    assert_eq!(d.level, Level::Deny);
    // The finding sits at the deterministic *endpoint*, where the
    // guarantee is declared (and where a waiver would have to live).
    assert_eq!(d.file, "crates/coverage/src/lib.rs");
    assert_eq!((d.line, d.col), (5, 1), "span moved: {d:?}");
    assert!(d.message.contains("wall-clock"), "{}", d.message);
    assert!(
        d.note.contains("coverage::evaluate_lattice -> core::util::stamp_now"),
        "chain missing: {}",
        d.note
    );
}

#[test]
fn panic_witness_fixture_yields_exact_span() {
    let r = deep(&[CORPUS[2]]);
    let d = only_rule(&r, "deep/panic-reachability");
    assert_eq!(d.level, Level::Warn);
    // The finding sits at the public endpoint; the witness names the
    // concrete site inside the private helper.
    assert_eq!(d.file, "crates/core/src/lib.rs");
    assert_eq!((d.line, d.col), (10, 1), "span moved: {d:?}");
    assert!(d.message.contains("core::Engine::run"), "{}", d.message);
    assert!(d.message.contains("crates/core/src/lib.rs:15"), "{}", d.message);
    assert!(d.message.contains(".unwrap()"), "{}", d.message);
    assert!(
        d.note.contains("core::Engine::run -> core::Engine::force"),
        "witness chain missing: {}",
        d.note
    );
}

#[test]
fn lock_cycle_fixture_yields_exact_span() {
    let r = deep(&[CORPUS[3]]);
    let d = only_rule(&r, "deep/lock-order-cycle");
    assert_eq!(d.level, Level::Deny);
    // The span is the inner acquisition realizing the cycle's first hop
    // (`self.b.lock()` under the live guard for `a`).
    assert_eq!(d.file, "crates/datalake/src/store.rs");
    assert_eq!((d.line, d.col), (13, 1), "span moved: {d:?}");
    assert!(d.message.contains("Store.a -> Store.b -> Store.a"), "{}", d.message);
}

#[test]
fn unresolved_call_fixture_yields_exact_span() {
    let r = deep(&[CORPUS[4]]);
    let d = only_rule(&r, "deep/unresolved-call");
    assert_eq!(d.level, Level::Warn);
    assert_eq!(d.file, "crates/core/src/dispatch.rs");
    assert_eq!((d.line, d.col), (20, 1), "span moved: {d:?}");
    assert!(d.message.contains("2 workspace candidates"), "{}", d.message);
    assert!(d.message.contains("core::dispatch::Alpha::step"), "{}", d.message);
    // The ambiguity is also part of the artifact, not just the report.
    assert_eq!(r.summary.unresolved, 1);
    assert!(r.callgraph_json.contains("\"unresolved\""));
}

#[test]
fn full_corpus_produces_all_four_rules() {
    let r = deep(CORPUS);
    for rule in [
        "deep/determinism-taint",
        "deep/panic-reachability",
        "deep/lock-order-cycle",
        "deep/unresolved-call",
    ] {
        assert!(
            r.report.findings.iter().any(|d| d.rule == rule),
            "corpus lost {rule}: {:?}",
            r.report.findings
        );
    }
}

proptest! {
    /// Any subset of the corpus, fed in any order, yields byte-identical
    /// output across repeated runs, findings sorted by
    /// `(file, line, col, rule)`, and a callgraph artifact that does not
    /// depend on input file order.
    #[test]
    fn deep_pass_is_sorted_and_byte_identical(
        keys in vec(0u64..1_000_000, CORPUS.len()),
        mask in vec(0u8..2, CORPUS.len()),
    ) {
        // Subset via mask, order via sort-by-key: together they range
        // over ordered sub-multisets of the corpus.
        let mut picked: Vec<(u64, &(&str, &str))> = CORPUS
            .iter()
            .zip(mask.iter())
            .filter(|(_, &m)| m == 1)
            .map(|(entry, _)| entry)
            .zip(keys.iter())
            .map(|(entry, &k)| (k, entry))
            .collect();
        picked.sort_by_key(|&(k, _)| k);
        let entries: Vec<(&str, &str)> = picked.iter().map(|&(_, e)| *e).collect();

        let a = deep(&entries);
        let b = deep(&entries);
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(&a.callgraph_json, &b.callgraph_json);

        // Findings come out sorted — the report order is part of the
        // byte-stability contract.
        let order: Vec<(&str, u32, u32, &str)> = a
            .report
            .findings
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.col, d.rule.as_str()))
            .collect();
        prop_assert!(order.windows(2).all(|w| w[0] <= w[1]), "unsorted: {order:?}");

        // Input order must not leak into the artifact: the same file
        // *set* in sorted order gives the same canonical bytes.
        let mut sorted_entries = entries.clone();
        sorted_entries.sort_unstable();
        let c = deep(&sorted_entries);
        prop_assert_eq!(&a.callgraph_json, &c.callgraph_json);
        prop_assert_eq!(a.render(), c.render());
    }
}
