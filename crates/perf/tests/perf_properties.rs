//! Property tests for `smn perf diff` and `smn perf gate`.
//!
//! The CLI's contract is determinism: diffing a report set against itself
//! is always empty, the rendered diff is byte-identical no matter what
//! order the input files were listed in, and the gate passes a run against
//! its own baseline. Reports here are generated, not hand-picked, so the
//! contract holds across arbitrary metric/attr/phase contents.

use proptest::collection::vec;
use proptest::prelude::*;

use smn_perf::gate::{gate_reports, GateConfig};
use smn_perf::report::Phase;
use smn_perf::{diff_reports, render_diff, BenchReport};

const NAMES: [&str; 8] = [
    "gk/iterations",
    "routed_gbps",
    "clean/accuracy",
    "coarsen/rows",
    "lake/ingested",
    "cdg/suggestions",
    "topology/dcs",
    "telemetry/records",
];

const SCALES: [&str; 4] = ["small", "300", "1000", "3000"];

/// Build a report from generated raw material. Metric names are drawn
/// from a fixed pool and deduplicated (the schema requires uniqueness).
fn build_report(
    bench: &str,
    seed: u64,
    scale_ix: usize,
    metrics: &[(usize, f64)],
    phases: &[(usize, u64, f64)],
) -> BenchReport {
    let mut r = BenchReport::new(bench, seed, SCALES[scale_ix % SCALES.len()]);
    let mut used = std::collections::BTreeSet::new();
    for &(name_ix, value) in metrics {
        let name = NAMES[name_ix % NAMES.len()];
        if used.insert(name) {
            r.push_metric(name, value, "count");
        }
    }
    let mut used_paths = std::collections::BTreeSet::new();
    for &(name_ix, count, mean_ms) in phases {
        let path = format!("perf/{}", NAMES[name_ix % NAMES.len()]);
        if used_paths.insert(path.clone()) {
            r.push_phase(Phase::from_wall_stats(&path, count.max(1), mean_ms, mean_ms * 2.0));
        }
    }
    r
}

proptest! {
    #[test]
    fn diff_of_self_is_empty(
        seed in 0u64..1000,
        scale_ix in 0usize..4,
        metrics in vec((0usize..8, 0.0f64..1e6), 0..8),
        phases in vec((0usize..8, 1u64..50, 0.0f64..100.0), 0..8),
    ) {
        let set = [
            build_report("alpha", seed, scale_ix, &metrics, &phases),
            build_report("beta", seed.wrapping_add(1), scale_ix, &metrics, &phases),
        ];
        prop_assert!(diff_reports(&set, &set).is_empty());
        prop_assert_eq!(render_diff(&diff_reports(&set, &set)), "no differences\n");
    }

    #[test]
    fn diff_output_is_independent_of_input_file_order(
        seed in 0u64..1000,
        metrics in vec((0usize..8, 0.0f64..1e6), 1..8),
        phases in vec((0usize..8, 1u64..50, 0.0f64..100.0), 0..8),
        bump in 1.0f64..100.0,
    ) {
        let a = build_report("alpha", seed, 1, &metrics, &phases);
        let b = build_report("beta", seed, 2, &metrics, &phases);
        let c = build_report("gamma", seed, 3, &metrics, &phases);
        let mut cur_a = a.clone();
        cur_a.metrics[0].value += bump;
        let cur = [cur_a, b.clone(), c.clone()];

        // Every permutation of the baseline file list renders the same bytes.
        let fwd = render_diff(&diff_reports(&[a.clone(), b.clone(), c.clone()], &cur));
        let rev = render_diff(&diff_reports(&[c.clone(), b.clone(), a.clone()], &cur));
        let rot = render_diff(&diff_reports(&[b, c, a], &cur));
        prop_assert_eq!(&fwd, &rev);
        prop_assert_eq!(&fwd, &rot);
        prop_assert!(fwd.contains("alpha metric"));
    }

    #[test]
    fn gate_passes_a_run_against_itself(
        seed in 0u64..1000,
        metrics in vec((0usize..8, 0.0f64..1e6), 0..8),
        phases in vec((0usize..8, 1u64..50, 0.001f64..100.0), 0..8),
    ) {
        let set = [build_report("alpha", seed, 0, &metrics, &phases)];
        prop_assert!(gate_reports(&set, &set, &GateConfig::default()).is_empty());
    }

    #[test]
    fn gate_boundary_is_exact_for_generated_tolerances(
        base_value in 1.0f64..1e5,
        tol in 0.01f64..0.5,
    ) {
        let mut base = BenchReport::new("alpha", 7, "300");
        base.push_metric("m", base_value, "count");
        let cfg = GateConfig { metric_tol: tol, ..GateConfig::default() };

        // Deviation strictly below tolerance passes...
        let mut under = base.clone();
        under.metrics[0].value = base_value * (1.0 + tol * 0.5);
        prop_assert!(gate_reports(&[base.clone()], &[under], &cfg).is_empty());
        // ...and clearly above it trips.
        let mut over = base.clone();
        over.metrics[0].value = base_value * (1.0 + tol * 2.0) + 1.0;
        let v = gate_reports(&[base], &[over], &cfg);
        prop_assert_eq!(v.len(), 1);
        prop_assert_eq!(v[0].kind.as_str(), "metric-regression");
    }
}

#[test]
fn serialized_roundtrip_preserves_diff_emptiness() {
    // File-level determinism: write → read → diff is still empty.
    let mut r = BenchReport::new("alpha", 7, "300");
    r.push_metric("gk/iterations", 1234.0, "count");
    r.push_phase(Phase::from_wall_stats("perf/te", 3, 1.5, 2.0));
    let back = BenchReport::from_json(&r.to_json_pretty()).unwrap();
    assert!(diff_reports(&[r], &[back]).is_empty());
}
