//! # smn-perf — performance observability for Software Managed Networks
//!
//! This crate holds the perf-trajectory layer built on top of `smn-obs`:
//!
//! * [`report`] — the unified, versioned [`BenchReport`] schema that every
//!   `BENCH_*.json` snapshot in the workspace serializes to.
//! * [`record`] — the `smn perf record` suite: one deterministic pass over
//!   the pipeline's hot paths (topology → telemetry → lake → coarsening →
//!   CDG → TE) at a chosen scale point, driven through the workspace's
//!   profiled entry points so wall time lands in span-tree phases and
//!   outcomes land in strictly-gated metrics.
//! * [`diff`] — order-independent, byte-stable comparison of report sets.
//! * [`gate`] — the regression gate: strict on deterministic metrics,
//!   lenient (blowup-factor) on machine-dependent wall phases.
//!
//! The split between metrics and phases is the crate's core idea: a CI
//! gate must never flake on hardware variance, yet must catch real
//! regressions the instant they land. Deterministic outcomes give the
//! former teeth; wall-factor bounds give the latter a tripwire.

#![warn(missing_docs)]

pub mod diff;
pub mod gate;
pub mod record;
pub mod report;

pub use diff::{diff_reports, render_diff, DiffRow};
pub use gate::{gate_reports, render_gate, GateConfig, Violation};
pub use record::{RecordConfig, RecordOutcome, Scale};
pub use report::{Attr, BenchReport, Metric, Phase};
