//! The `smn perf record` suite: one deterministic pass over the pipeline's
//! hot paths at a chosen topology scale, emitting a [`BenchReport`].
//!
//! The suite drives the *profiled* entry points added across the
//! workspace (`report_profiled`, `from_fine_profiled`,
//! `suggest_edges_profiled`, `max_multicommodity_flow_profiled`,
//! `ingest_alerts_profiled`, `generate_profiled`), so every stage lands in
//! the wall profile under a `perf/*` parent phase while its outcomes —
//! counts, coarse sizes, solver iterations, routed gigabits — land as
//! deterministic metrics. Equal seed + scale + code ⇒ equal metrics on any
//! machine; that is what the regression gate compares strictly.

use std::fmt;

use smn_core::bwlogs::{AdaptiveCoarsener, NestedCoarsener, TimeCoarsener, TopologyCoarsener};
use smn_core::coarsen::Coarsening;
use smn_core::controller::{ControllerConfig, SmnController};
use smn_core::stream::{StreamConfig, StreamState};
use smn_datalake::ingest::{ingest_alerts_profiled, DedupDenoiser};
use smn_datalake::Clds;
use smn_depgraph::coarse::CoarseDepGraph;
use smn_depgraph::refine::{suggest_edges_profiled, ResolvedIncident};
use smn_depgraph::syndrome::Syndrome;
use smn_incident::RedditDeployment;
use smn_obs::clock::SimClock;
use smn_obs::Obs;
use smn_te::demand::DemandMatrix;
use smn_te::mcf::{max_multicommodity_flow_profiled, TeConfig};
use smn_telemetry::delta::TelemetryDelta;
use smn_telemetry::record::{Alert, Severity};
use smn_telemetry::series::Statistic;
use smn_telemetry::time::{Ts, DAY, HOUR};
use smn_telemetry::traffic::{TrafficConfig, TrafficModel};
use smn_topology::gen::{generate_planetary, PlanetaryConfig};
use smn_topology::NodeId;

use crate::report::BenchReport;

/// A scale-sweep point: how large a planetary WAN the suite runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 24 DCs (`PlanetaryConfig::small`) — unit-test sized.
    Small,
    /// 300 DCs (the paper's deployment; `PlanetaryConfig::default`).
    Dc300,
    /// 1000 DCs (`PlanetaryConfig::scale_1000`).
    Dc1000,
    /// 3000 DCs (`PlanetaryConfig::scale_3000`).
    Dc3000,
}

impl Scale {
    /// Parse a CLI scale argument.
    ///
    /// # Errors
    /// When `s` is not one of `small`, `300`, `1000`, `3000`.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "small" => Ok(Scale::Small),
            "300" => Ok(Scale::Dc300),
            "1000" => Ok(Scale::Dc1000),
            "3000" => Ok(Scale::Dc3000),
            other => Err(format!("unknown scale {other:?} (expected small, 300, 1000, or 3000)")),
        }
    }

    /// The schema's scale string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Dc300 => "300",
            Scale::Dc1000 => "1000",
            Scale::Dc3000 => "3000",
        }
    }

    /// The topology generator config for this scale point.
    #[must_use]
    pub fn config(self, seed: u64) -> PlanetaryConfig {
        match self {
            Scale::Small => PlanetaryConfig::small(seed),
            Scale::Dc300 => PlanetaryConfig { seed, ..PlanetaryConfig::default() },
            Scale::Dc1000 => PlanetaryConfig::scale_1000(seed),
            Scale::Dc3000 => PlanetaryConfig::scale_3000(seed),
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of one record run.
#[derive(Debug, Clone)]
pub struct RecordConfig {
    /// Topology scale to run at.
    pub scale: Scale,
    /// Master seed (topology + traffic derive from it).
    pub seed: u64,
    /// Revision string stamped into the report.
    pub revision: String,
}

impl Default for RecordConfig {
    fn default() -> Self {
        RecordConfig {
            scale: Scale::Dc300,
            seed: 7,
            revision: crate::report::UNVERSIONED.to_string(),
        }
    }
}

/// The result of a record run: the report plus the folded-stack wall
/// profile for flamegraph tooling.
#[derive(Debug, Clone)]
pub struct RecordOutcome {
    /// The unified perf-trajectory report.
    pub report: BenchReport,
    /// Folded-stack text (`path total_us` per line).
    pub folded: String,
}

/// Half an hour of 5-minute telemetry epochs — enough work to profile,
/// small enough that the 3000-DC sweep point stays tractable.
const RECORD_EPOCHS: usize = 6;

/// Half a day of 5-minute epochs streamed as one bulk delta before the
/// steady-state ticks of the `incremental_coarsen` stage — enough history
/// that a per-tick batch recompute visibly dwarfs the delta apply.
const HISTORY_EPOCHS: usize = 144;

/// Run the suite.
#[must_use]
#[allow(clippy::cast_precision_loss)] // counts recorded as metrics stay far below 2^52
#[allow(clippy::too_many_lines)] // linear suite script: one block per pipeline stage
pub fn run(cfg: &RecordConfig) -> RecordOutcome {
    let obs = Obs::enabled(SimClock::new());
    let mut report = BenchReport::new(
        &format!("perf_record_{}", cfg.scale.as_str()),
        cfg.seed,
        cfg.scale.as_str(),
    )
    .with_revision(&cfg.revision);

    // Stage 1: topology generation.
    let planetary = {
        let mut phase = obs.phase("perf/topology");
        let p = generate_planetary(&cfg.scale.config(cfg.seed));
        phase.field("dcs", p.wan.dc_count());
        phase.field("links", p.wan.link_count());
        p
    };
    report.push_metric("topology/dcs", planetary.wan.dc_count() as f64, "count");
    report.push_metric("topology/links", planetary.wan.link_count() as f64, "count");

    // Stage 2: telemetry generation (the CLDS's raw input).
    let start = Ts::from_days(2);
    let (model, log) = {
        let _phase = obs.phase("perf/telemetry");
        let model = TrafficModel::new(&planetary.wan, TrafficConfig::default());
        let log = model.generate_profiled(start, RECORD_EPOCHS, &obs);
        (model, log)
    };
    report.push_metric("telemetry/pairs", model.pairs().len() as f64, "count");
    report.push_metric("telemetry/records", log.len() as f64, "count");

    // Stage 3: alert ingest through the denoiser into the CLDS.
    let ingest = {
        let _phase = obs.phase("perf/lake");
        let clds = Clds::new();
        let mut denoiser = DedupDenoiser::new(HOUR);
        let alerts = log.iter().step_by(53).map(|r| Alert {
            ts: r.ts,
            component: format!("dc-{}", r.src),
            team: "network".to_string(),
            kind: "bw-anomaly".to_string(),
            severity: Severity::Warning,
            message: "bandwidth outside forecast band".to_string(),
        });
        ingest_alerts_profiled(&clds, &mut denoiser, alerts, &obs)
    };
    report.push_metric("lake/ingested", ingest.ingested as f64, "count");
    report.push_metric("lake/suppressed", ingest.suppressed as f64, "count");

    // Stage 4: the four bandwidth-log coarseners.
    let regions = planetary.wan.contract_by_region();
    {
        let _phase = obs.phase("perf/coarsen");
        let time = TimeCoarsener::new(HOUR, vec![Statistic::Mean, Statistic::P95]);
        let r = time.report_profiled(&log, &obs, "time-1h");
        report.push_metric("coarsen/time-1h_rows", r.coarse_size as f64, "count");
        let topo = TopologyCoarsener::new(regions.node_map.clone());
        let r = topo.report_profiled(&log, &obs, "topology-regions");
        report.push_metric("coarsen/topology-regions_rows", r.coarse_size as f64, "count");
        let nested = NestedCoarsener {
            fine_horizon: HOUR * 6,
            mid_horizon: DAY,
            mid_window: HOUR,
            old_window: DAY,
            stats: vec![Statistic::Mean, Statistic::Max],
            now: start + HOUR,
        };
        let r = nested.report_profiled(&log, &obs, "nested");
        report.push_metric("coarsen/nested_rows", r.coarse_size as f64, "count");
        let adaptive = AdaptiveCoarsener {
            cv_threshold: 0.35,
            stable_window: DAY,
            volatile_window: HOUR,
            stats: vec![Statistic::Mean],
        };
        let r = adaptive.report_profiled(&log, &obs, "adaptive");
        report.push_metric("coarsen/adaptive_rows", r.coarse_size as f64, "count");
    }

    // Stage 5: CDG build + refinement over the reference deployment.
    {
        let _phase = obs.phase("perf/cdg");
        let deployment = RedditDeployment::build();
        let cdg = CoarseDepGraph::from_fine_profiled(&deployment.fine, &obs);
        let n = cdg.len();
        let names: Vec<String> = cdg.team_names().into_iter().map(str::to_string).collect();
        // Synthetic resolved-incident history: every team repeatedly shows
        // an extra symptomatic neighbor, so refinement has signal to chew
        // on at a size proportional to the CDG.
        let mut history = Vec::new();
        for _round in 0..32 {
            for (i, responsible) in names.iter().enumerate() {
                let sym = Syndrome::from_teams(
                    n,
                    [
                        NodeId(u32::try_from(i).unwrap_or(u32::MAX)),
                        NodeId(u32::try_from((i + 1) % n).unwrap_or(u32::MAX)),
                    ],
                );
                history.push(ResolvedIncident { syndrome: sym, responsible: responsible.clone() });
            }
        }
        let suggestions = suggest_edges_profiled(&cdg, &history, 8, &obs);
        report.push_metric("cdg/teams", cdg.len() as f64, "count");
        report.push_metric("cdg/edges", cdg.graph.edge_count() as f64, "count");
        report.push_metric("cdg/history", history.len() as f64, "count");
        report.push_metric("cdg/suggestions", suggestions.len() as f64, "count");
    }

    // Stage 6: Garg–Könemann TE on the region-contracted WAN.
    {
        let _phase = obs.phase("perf/te");
        let ts = start + 12 * 300;
        let demand = DemandMatrix::from_triples(
            model.demand_matrix(ts).into_iter().map(|(s, d, g)| (s, d, g * 0.05)),
        );
        let region_demand = demand.contract(&regions.node_map);
        let te_cfg = TeConfig { k_paths: 3, epsilon: 0.2, ..Default::default() };
        let sol = max_multicommodity_flow_profiled(
            &regions.graph,
            |_, e| e.payload.capacity_gbps,
            &region_demand,
            &te_cfg,
            &obs,
        );
        report.push_metric("te/supernodes", regions.graph.node_count() as f64, "count");
        report.push_metric("te/commodities", region_demand.len() as f64, "count");
        report.push_metric("te/iterations", sol.iterations as f64, "count");
        report.push_metric("te/routed_gbps", sol.routed_gbps, "gbps");
        report.push_metric("te/offered_gbps", sol.offered_gbps, "gbps");
    }

    // Stage 7: incremental coarsening — the streaming delta path against
    // the batch oracle it must stay byte-identical to. Half a day of
    // history arrives as one bulk delta, then the suite's six epochs
    // stream tick by tick in steady state; the closing reconciliation is
    // the full batch recompute (`stream/reconcile` wall phase), so the
    // profile carries both sides of the comparison while the work-ratio
    // speedup below stays deterministic.
    {
        let _phase = obs.phase("perf/incremental");
        let deployment = RedditDeployment::build();
        let mut ctl = SmnController::new(
            CoarseDepGraph::from_fine(&deployment.fine),
            ControllerConfig::default(),
        );
        ctl.set_obs(obs.clone());
        let mut state = StreamState::new(
            StreamConfig { reconcile_every: 0, ..StreamConfig::default() },
            deployment.fine.clone(),
        );
        let stream_log = model.generate_profiled(start + DAY, HISTORY_EPOCHS + RECORD_EPOCHS, &obs);
        let n_hist = HISTORY_EPOCHS * model.pairs().len();
        let bulk = TelemetryDelta::new(0, stream_log[..n_hist].to_vec());
        let ticks = TelemetryDelta::split_epochs(&stream_log[n_hist..], 1);
        let mut last = smn_core::stream::DeltaApplyStats::default();
        let mut failures = 0usize;
        match ctl.stream_tick(&mut state, &bulk, None) {
            Ok(o) => last = o.time,
            Err(_) => failures += 1,
        }
        for td in &ticks {
            match ctl.stream_tick(&mut state, td, None) {
                Ok(o) => last = o.time,
                Err(_) => failures += 1,
            }
        }
        let reconciled = match ctl.stream_reconcile(&mut state) {
            Ok(_) => 1.0,
            Err(_) => 0.0,
        };
        report.push_metric("incremental/ticks", (1 + ticks.len()) as f64, "count");
        report.push_metric("incremental/lake_records", stream_log.len() as f64, "count");
        report.push_metric("incremental/total_rows", last.total_rows as f64, "count");
        report.push_metric("incremental/dirty_cells", last.dirty_cells as f64, "count");
        // Work ratio of a steady-state tick: rows a batch recompute would
        // rebuild over rows the delta apply actually recomputed. Pure
        // counts, so strict-gated like every other metric.
        report.push_metric(
            "incremental/speedup",
            last.total_rows as f64 / last.recomputed_rows.max(1) as f64,
            "ratio",
        );
        report.push_metric("incremental/failures", failures as f64, "count");
        report.push_metric("incremental/reconciled", reconciled, "count");
    }

    report.push_profile(&obs.wall_profile());
    RecordOutcome { report, folded: obs.wall_profile_folded() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_and_roundtrips() {
        for s in ["small", "300", "1000", "3000"] {
            assert_eq!(Scale::parse(s).unwrap().as_str(), s);
        }
        assert!(Scale::parse("450").is_err());
        assert_eq!(Scale::Dc300.config(11).dc_count(), 300);
        assert_eq!(Scale::Dc300.config(11).seed, 11);
        assert_eq!(Scale::Dc1000.config(7).dc_count(), 1000);
        assert_eq!(Scale::Small.config(7).dc_count(), 24);
    }

    #[test]
    fn small_suite_produces_a_valid_deterministic_report() {
        let cfg = RecordConfig { scale: Scale::Small, ..Default::default() };
        let a = run(&cfg);
        a.report.validate().unwrap();
        assert_eq!(a.report.bench, "perf_record_small");
        assert_eq!(a.report.scale, "small");
        // Every pipeline stage contributed a parent phase.
        for parent in [
            "perf/topology",
            "perf/telemetry",
            "perf/lake",
            "perf/coarsen",
            "perf/cdg",
            "perf/te",
            "perf/incremental",
        ] {
            assert!(a.report.phase(parent).is_some(), "missing phase {parent}");
        }
        // The incremental stage streams cleanly: a healthy work-ratio
        // speedup, zero failed ticks, and a passing reconciliation.
        assert!(a.report.metric("incremental/speedup").unwrap() >= 5.0);
        assert!(a.report.metric("incremental/failures").unwrap().abs() < f64::EPSILON);
        assert!((a.report.metric("incremental/reconciled").unwrap() - 1.0).abs() < f64::EPSILON);
        assert!(a.report.phase("perf/incremental;coarsen/apply_delta").is_some());
        assert!(a.report.phase("perf/incremental;stream/reconcile").is_some());
        // Profiled inner phases nest under their stage.
        assert!(a.report.phase("perf/telemetry;telemetry/gen").is_some());
        assert!(a.report.phase("perf/te;te/gk;gk/pack").is_some());
        assert!(a.folded.contains("perf/coarsen;coarsen/time-1h"));
        // Deterministic metrics are identical across reruns.
        let b = run(&cfg);
        assert_eq!(a.report.metrics, b.report.metrics);
        assert!(a.report.metric("topology/dcs").unwrap() > 0.0);
        assert!(a.report.metric("te/iterations").unwrap() > 0.0);
        assert!(a.report.metric("cdg/suggestions").unwrap() > 0.0);
    }
}
