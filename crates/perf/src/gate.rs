//! The perf regression gate (`smn perf gate`).
//!
//! The gate compares a current report set against committed baselines and
//! reports violations. It is deliberately two-faced, matching the schema's
//! split (see [`crate::report`]):
//!
//! * **Metrics** are deterministic, so they gate *strictly*: any relative
//!   deviation beyond `metric_tol` (default 0 — exact equality) is a
//!   violation. A legitimate algorithm change shows up here and is
//!   answered by re-recording the baseline in the same PR.
//! * **Phases** are wall time on whatever machine ran the suite, so they
//!   gate *leniently*: only a blowup beyond `wall_factor`× the baseline
//!   total (default 25×) trips, catching complexity regressions without
//!   flaking on hardware variance.
//!
//! All comparisons use strict `>`: a value exactly at its threshold
//! passes, the next representable value above it fails.

use std::collections::BTreeMap;

use crate::report::BenchReport;

/// Gate thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Maximum allowed relative deviation of a deterministic metric
    /// (`|cur - base| / |base|`; absolute deviation when the baseline is
    /// zero).
    pub metric_tol: f64,
    /// Maximum allowed ratio `cur.total_ms / base.total_ms` per phase.
    pub wall_factor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { metric_tol: 0.0, wall_factor: 25.0 }
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Bench the violation is in.
    pub bench: String,
    /// Violation class: `"missing-bench"`, `"missing-metric"`,
    /// `"metric-regression"`, `"non-finite-metric"`, or
    /// `"wall-regression"`.
    pub kind: String,
    /// Metric name or phase path.
    pub name: String,
    /// Human-readable detail.
    pub message: String,
}

fn violation(bench: &str, kind: &str, name: &str, message: String) -> Violation {
    Violation { bench: bench.to_string(), kind: kind.to_string(), name: name.to_string(), message }
}

/// Gate `current` against `baseline`. Empty result = pass. Benches present
/// only in `current` are allowed (the trajectory grows); benches present
/// only in `baseline` are violations (coverage must not silently shrink).
#[must_use]
pub fn gate_reports(
    baseline: &[BenchReport],
    current: &[BenchReport],
    cfg: &GateConfig,
) -> Vec<Violation> {
    let mut c_ix: BTreeMap<&str, &BenchReport> = BTreeMap::new();
    for r in current {
        c_ix.entry(r.bench.as_str()).or_insert(r);
    }
    let mut out = Vec::new();
    for base in baseline {
        let bench = base.bench.as_str();
        let Some(cur) = c_ix.get(bench) else {
            out.push(violation(
                bench,
                "missing-bench",
                bench,
                "bench present in baseline but absent from current run".to_string(),
            ));
            continue;
        };
        for m in &base.metrics {
            let Some(cv) = cur.metric(&m.name) else {
                out.push(violation(
                    bench,
                    "missing-metric",
                    &m.name,
                    format!("metric absent from current run (baseline {})", m.value),
                ));
                continue;
            };
            if !cv.is_finite() {
                out.push(violation(
                    bench,
                    "non-finite-metric",
                    &m.name,
                    format!("current value {cv} is not finite"),
                ));
                continue;
            }
            let deviation =
                if m.value == 0.0 { cv.abs() } else { (cv - m.value).abs() / m.value.abs() };
            if deviation > cfg.metric_tol {
                out.push(violation(
                    bench,
                    "metric-regression",
                    &m.name,
                    format!(
                        "{} -> {cv} deviates {deviation:.6} > tolerance {:.6}",
                        m.value, cfg.metric_tol
                    ),
                ));
            }
        }
        for p in &base.phases {
            let Some(cp) = BenchReport::phase(cur, &p.path) else { continue };
            if p.total_ms > 0.0 && cp.total_ms > cfg.wall_factor * p.total_ms {
                out.push(violation(
                    bench,
                    "wall-regression",
                    &p.path,
                    format!(
                        "{:.3}ms -> {:.3}ms exceeds {}x the baseline",
                        p.total_ms, cp.total_ms, cfg.wall_factor
                    ),
                ));
            }
        }
    }
    out.sort_by(|a, b| (&a.bench, &a.kind, &a.name).cmp(&(&b.bench, &b.kind, &b.name)));
    out
}

/// Render violations for the CLI (`"gate: pass\n"` when empty).
#[must_use]
pub fn render_gate(violations: &[Violation]) -> String {
    use std::fmt::Write;
    if violations.is_empty() {
        return "gate: pass\n".to_string();
    }
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "gate: FAIL [{}] {} {}: {}", v.kind, v.bench, v.name, v.message);
    }
    let _ = writeln!(out, "gate: {} violation(s)", violations.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Phase;

    fn report(bench: &str) -> BenchReport {
        let mut r = BenchReport::new(bench, 7, "300");
        r.push_metric("iterations", 100.0, "count");
        r.push_phase(Phase::from_wall_stats("perf/te", 1, 2.0, 2.0));
        r
    }

    #[test]
    fn identical_sets_pass() {
        let a = [report("x")];
        assert!(gate_reports(&a, &a, &GateConfig::default()).is_empty());
        assert_eq!(render_gate(&[]), "gate: pass\n");
    }

    #[test]
    fn metric_gate_trips_strictly_above_tolerance() {
        let base = [report("x")];
        let cfg = GateConfig { metric_tol: 0.10, ..Default::default() };
        // Exactly at the boundary: |110 - 100| / 100 == 0.10 — passes.
        let mut at = [report("x")];
        at[0].metrics[0].value = 110.0;
        assert!(gate_reports(&base, &at, &cfg).is_empty());
        // The next step above trips.
        let mut over = [report("x")];
        over[0].metrics[0].value = 110.00001;
        let v = gate_reports(&base, &over, &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "metric-regression");
    }

    #[test]
    fn zero_tolerance_requires_exact_equality() {
        let base = [report("x")];
        let mut cur = [report("x")];
        cur[0].metrics[0].value = 100.0 + f64::EPSILON * 128.0;
        assert_eq!(gate_reports(&base, &cur, &GateConfig::default()).len(), 1);
        cur[0].metrics[0].value = 100.0;
        assert!(gate_reports(&base, &cur, &GateConfig::default()).is_empty());
    }

    #[test]
    fn wall_gate_trips_strictly_above_factor() {
        let base = [report("x")];
        let cfg = GateConfig { wall_factor: 4.0, ..Default::default() };
        // Exactly 4x the 2.0ms baseline passes.
        let mut at = [report("x")];
        at[0].phases[0].total_ms = 8.0;
        assert!(gate_reports(&base, &at, &cfg).is_empty());
        let mut over = [report("x")];
        over[0].phases[0].total_ms = 8.000_001;
        let v = gate_reports(&base, &over, &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "wall-regression");
        assert!(render_gate(&v).contains("wall-regression"));
    }

    #[test]
    fn missing_coverage_is_a_violation_but_growth_is_not() {
        let base = [report("x")];
        let mut cur = vec![report("x"), report("brand-new")];
        cur[0].metrics.clear();
        let v = gate_reports(&base, &cur, &GateConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "missing-metric");
        // A missing bench trips too.
        let v = gate_reports(&base, &[report("other")], &GateConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "missing-bench");
    }

    #[test]
    fn non_finite_current_metric_is_flagged() {
        let base = [report("x")];
        let mut cur = [report("x")];
        cur[0].metrics[0].value = f64::NAN;
        let v = gate_reports(&base, &cur, &GateConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "non-finite-metric");
    }
}
