//! The unified `BenchReport` schema (version 1) — every `BENCH_*.json`
//! perf-trajectory snapshot in the workspace serializes to this shape.
//!
//! A report separates what machines may *gate* on from what they may only
//! *watch*:
//!
//! * [`Metric`]s are deterministic outcomes of the benched code — counts,
//!   solver iterations, routed gigabits, coarse sizes. Equal seeds and
//!   equal code produce equal metrics on any machine, so the regression
//!   gate compares them strictly.
//! * [`Phase`]s are wall-clock aggregates keyed by the profiler's
//!   span-tree path (see `smn_obs::profile`). They are machine-dependent
//!   trend data; the gate only flags order-of-magnitude blowups.
//! * [`Attr`]s are free-form string facts (outcome hashes, campaign
//!   seeds) carried for cross-run forensics.
//!
//! Reports carry no wall-clock timestamps; run identity comes from the
//! `seed`, the topology `scale`, and the `revision` string the caller
//! passes (e.g. `git describe` via `smn perf record --revision`).

use serde::{Deserialize, Serialize};

/// The artifact `kind` tag dispatched on by `smn lint`.
pub const BENCH_REPORT_KIND: &str = "bench-report";

/// Current schema version.
pub const BENCH_REPORT_SCHEMA: u64 = 1;

/// The topology scales a report may claim (`PlanetaryConfig::small`,
/// default 300, `scale_1000`, `scale_3000`).
pub const KNOWN_SCALES: [&str; 4] = ["small", "300", "1000", "3000"];

/// Revision recorded when the caller supplies none.
pub const UNVERSIONED: &str = "unversioned";

/// A deterministic, strictly-gated measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Flat name, slash-scoped (`"clean/accuracy"`, `"gk/iterations"`).
    pub name: String,
    /// The value; must be finite.
    pub value: f64,
    /// Unit label (`"count"`, `"gbps"`, `"pct"`, ...).
    pub unit: String,
}

/// A free-form string fact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attr {
    /// Name, same convention as metrics.
    pub name: String,
    /// Value.
    pub value: String,
}

/// Wall-time aggregate of one profiled span-tree path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// `;`-joined span-tree path (the folded-stack convention).
    pub path: String,
    /// Observations folded in.
    pub count: u64,
    /// Total wall milliseconds.
    pub total_ms: f64,
    /// Mean wall milliseconds per observation.
    pub mean_ms: f64,
    /// Worst single observation (max, or p99 for histogram-derived rows).
    pub worst_ms: f64,
}

impl Phase {
    /// Build a phase row from histogram-style wall stats (the shape the
    /// bench binaries record via `smn_bench::wall_stats`): total is
    /// reconstructed as `mean * count`, worst is the p99.
    #[must_use]
    pub fn from_wall_stats(path: &str, count: u64, mean_ms: f64, p99_ms: f64) -> Self {
        #[allow(clippy::cast_precision_loss)] // sample counts stay far below 2^52
        let total_ms = mean_ms * count as f64;
        Phase { path: path.to_string(), count, total_ms, mean_ms, worst_ms: p99_ms }
    }
}

impl From<&smn_obs::PhaseStat> for Phase {
    fn from(s: &smn_obs::PhaseStat) -> Self {
        Phase {
            path: s.path.clone(),
            count: s.count,
            total_ms: s.total_ms,
            mean_ms: s.mean_ms,
            worst_ms: s.worst_ms,
        }
    }
}

/// One versioned perf-trajectory snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Artifact kind tag: always [`BENCH_REPORT_KIND`].
    pub kind: String,
    /// Schema version: always [`BENCH_REPORT_SCHEMA`].
    pub schema: u64,
    /// Bench name (`"degraded_mode"`, `"perf_record"`, ...).
    pub bench: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Topology scale, one of [`KNOWN_SCALES`].
    pub scale: String,
    /// Code revision the run was taken at (caller-supplied; never read
    /// from the environment to keep emitters deterministic).
    pub revision: String,
    /// Deterministic measurements (strictly gated).
    pub metrics: Vec<Metric>,
    /// Free-form string facts.
    pub attrs: Vec<Attr>,
    /// Wall-time profile rows (leniently gated).
    pub phases: Vec<Phase>,
}

impl BenchReport {
    /// Start an empty report at the current schema version.
    #[must_use]
    pub fn new(bench: &str, seed: u64, scale: &str) -> Self {
        BenchReport {
            kind: BENCH_REPORT_KIND.to_string(),
            schema: BENCH_REPORT_SCHEMA,
            bench: bench.to_string(),
            seed,
            scale: scale.to_string(),
            revision: UNVERSIONED.to_string(),
            metrics: Vec::new(),
            attrs: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Set the revision (builder-style).
    #[must_use]
    pub fn with_revision(mut self, revision: &str) -> Self {
        self.revision = revision.to_string();
        self
    }

    /// Append a deterministic metric.
    pub fn push_metric(&mut self, name: &str, value: f64, unit: &str) {
        self.metrics.push(Metric { name: name.to_string(), value, unit: unit.to_string() });
    }

    /// Append a string attribute.
    pub fn push_attr(&mut self, name: &str, value: impl Into<String>) {
        self.attrs.push(Attr { name: name.to_string(), value: value.into() });
    }

    /// Append one phase row.
    pub fn push_phase(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// Append an entire wall profile (`smn_obs::Obs::wall_profile`).
    pub fn push_profile(&mut self, stats: &[smn_obs::PhaseStat]) {
        self.phases.extend(stats.iter().map(Phase::from));
    }

    /// Look up a metric value by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Look up a phase row by path.
    #[must_use]
    pub fn phase(&self, path: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Sort metrics/attrs by name and phases by path, making the
    /// serialized form independent of push order.
    pub fn normalize(&mut self) {
        self.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        self.attrs.sort_by(|a, b| a.name.cmp(&b.name));
        self.phases.sort_by(|a, b| a.path.cmp(&b.path));
    }

    /// Serialize, normalized, as pretty-printed JSON (no trailing
    /// newline).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut sorted = self.clone();
        sorted.normalize();
        // The schema contains only serializable primitives; failing here
        // would be a vendored-serde bug.
        serde_json::to_string_pretty(&sorted).unwrap_or_default()
    }

    /// Parse and structurally validate a report.
    ///
    /// # Errors
    /// When the JSON does not parse, does not match the schema shape, or
    /// fails [`BenchReport::validate`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        let report: BenchReport = serde_json::from_str(s).map_err(|e| e.to_string())?;
        report.validate()?;
        Ok(report)
    }

    /// Structural validity: right kind and schema version, known scale,
    /// unique metric names and phase paths, finite metric values,
    /// non-negative finite timings.
    ///
    /// # Errors
    /// With a message naming the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.kind != BENCH_REPORT_KIND {
            return Err(format!("kind {:?} is not {BENCH_REPORT_KIND:?}", self.kind));
        }
        if self.schema != BENCH_REPORT_SCHEMA {
            return Err(format!("schema {} is not {BENCH_REPORT_SCHEMA}", self.schema));
        }
        if !KNOWN_SCALES.contains(&self.scale.as_str()) {
            return Err(format!(
                "unknown scale {:?} (expected one of {KNOWN_SCALES:?})",
                self.scale
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for m in &self.metrics {
            if !seen.insert(format!("m/{}", m.name)) {
                return Err(format!("duplicate metric {:?}", m.name));
            }
            if !m.value.is_finite() {
                return Err(format!("metric {:?} is not finite: {}", m.name, m.value));
            }
        }
        for p in &self.phases {
            if !seen.insert(format!("p/{}", p.path)) {
                return Err(format!("duplicate phase path {:?}", p.path));
            }
            for (field, v) in
                [("total_ms", p.total_ms), ("mean_ms", p.mean_ms), ("worst_ms", p.worst_ms)]
            {
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("phase {:?} {field} is invalid: {v}", p.path));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("sample", 7, "small").with_revision("r1");
        r.push_metric("z/second", 2.0, "count");
        r.push_metric("a/first", 1.5, "gbps");
        r.push_attr("hash", "abc123");
        r.push_phase(Phase::from_wall_stats("outer;inner", 4, 2.0, 3.5));
        r.push_phase(Phase {
            path: "outer".into(),
            count: 1,
            total_ms: 10.0,
            mean_ms: 10.0,
            worst_ms: 10.0,
        });
        r
    }

    #[test]
    fn roundtrips_and_normalizes() {
        let r = sample();
        let json = r.to_json_pretty();
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back.bench, "sample");
        assert_eq!(back.metric("a/first"), Some(1.5));
        // Normalized: metric and phase order is name/path-sorted.
        assert_eq!(back.metrics[0].name, "a/first");
        assert_eq!(back.phases[0].path, "outer");
        // Serialization is push-order independent.
        let mut reordered = sample();
        reordered.metrics.reverse();
        reordered.phases.reverse();
        assert_eq!(reordered.to_json_pretty(), json);
    }

    #[test]
    fn wall_stats_phase_reconstructs_total() {
        let p = Phase::from_wall_stats("x", 4, 2.5, 9.0);
        assert!((p.total_ms - 10.0).abs() < 1e-12);
        assert!((p.worst_ms - 9.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_reports() {
        let mut r = sample();
        r.scale = "450".into();
        assert!(r.validate().unwrap_err().contains("unknown scale"));

        let mut r = sample();
        r.schema = 2;
        assert!(r.validate().unwrap_err().contains("schema"));

        let mut r = sample();
        r.push_metric("a/first", 3.0, "gbps");
        assert!(r.validate().unwrap_err().contains("duplicate metric"));

        let mut r = sample();
        r.push_metric("bad", f64::NAN, "count");
        assert!(r.validate().unwrap_err().contains("not finite"));

        let mut r = sample();
        r.phases[0].total_ms = -1.0;
        assert!(r.validate().unwrap_err().contains("total_ms"));
    }

    #[test]
    fn profile_rows_import_from_obs() {
        let obs = smn_obs::Obs::enabled(smn_obs::clock::SimClock::new());
        obs.record_phase_ns("a", 2_000_000);
        obs.record_phase_ns("a;b", 500_000);
        let mut r = BenchReport::new("p", 1, "300");
        r.push_profile(&obs.wall_profile());
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phase("a").unwrap().count, 1);
        assert!((r.phase("a;b").unwrap().total_ms - 0.5).abs() < 1e-9);
        r.validate().unwrap();
    }
}
