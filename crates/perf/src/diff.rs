//! Compare two report sets (`smn perf diff`).
//!
//! The diff is a pure function of its inputs: reports are matched by bench
//! name, every section is compared through order-independent indexes, and
//! the rows come out sorted by `(bench, kind, name)` — so the rendered
//! output is byte-identical regardless of the order the input files were
//! listed in, and diffing a report set against itself is empty.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::BenchReport;

/// One reported difference.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Bench the row belongs to.
    pub bench: String,
    /// Section: `"bench"`, `"meta"`, `"metric"`, `"attr"`, or `"phase"`.
    pub kind: String,
    /// Name within the section.
    pub name: String,
    /// Rendered baseline value (`"absent"` when missing).
    pub baseline: String,
    /// Rendered current value (`"absent"` when missing).
    pub current: String,
    /// Relative change in percent, when both sides are numeric and the
    /// baseline is nonzero.
    pub delta_pct: Option<f64>,
}

fn row(
    bench: &str,
    kind: &str,
    name: &str,
    baseline: String,
    current: String,
    delta_pct: Option<f64>,
) -> DiffRow {
    DiffRow {
        bench: bench.to_string(),
        kind: kind.to_string(),
        name: name.to_string(),
        baseline,
        current,
        delta_pct,
    }
}

fn pct(base: f64, cur: f64) -> Option<f64> {
    if base == 0.0 || !base.is_finite() || !cur.is_finite() {
        None
    } else {
        Some((cur - base) / base.abs() * 100.0)
    }
}

/// Exact f64 equality for diff purposes: total order, so `NaN == NaN` and
/// a report diffs empty against itself even with pathological values.
fn same(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == std::cmp::Ordering::Equal
}

fn diff_pair(base: &BenchReport, cur: &BenchReport, rows: &mut Vec<DiffRow>) {
    let bench = base.bench.as_str();
    for (name, b, c) in [
        ("schema", base.schema.to_string(), cur.schema.to_string()),
        ("seed", base.seed.to_string(), cur.seed.to_string()),
        ("scale", base.scale.clone(), cur.scale.clone()),
        ("revision", base.revision.clone(), cur.revision.clone()),
    ] {
        if b != c {
            rows.push(row(bench, "meta", name, b, c, None));
        }
    }

    let b_metrics: BTreeMap<&str, f64> =
        base.metrics.iter().map(|m| (m.name.as_str(), m.value)).collect();
    let c_metrics: BTreeMap<&str, f64> =
        cur.metrics.iter().map(|m| (m.name.as_str(), m.value)).collect();
    for name in b_metrics.keys().chain(c_metrics.keys()).collect::<BTreeSet<_>>() {
        match (b_metrics.get(name), c_metrics.get(name)) {
            (Some(b), Some(c)) if !same(*b, *c) => {
                rows.push(row(bench, "metric", name, b.to_string(), c.to_string(), pct(*b, *c)));
            }
            (Some(b), None) => {
                rows.push(row(bench, "metric", name, b.to_string(), "absent".into(), None));
            }
            (None, Some(c)) => {
                rows.push(row(bench, "metric", name, "absent".into(), c.to_string(), None));
            }
            _ => {}
        }
    }

    let b_attrs: BTreeMap<&str, &str> =
        base.attrs.iter().map(|a| (a.name.as_str(), a.value.as_str())).collect();
    let c_attrs: BTreeMap<&str, &str> =
        cur.attrs.iter().map(|a| (a.name.as_str(), a.value.as_str())).collect();
    for name in b_attrs.keys().chain(c_attrs.keys()).collect::<BTreeSet<_>>() {
        let b = b_attrs.get(name).copied().unwrap_or("absent");
        let c = c_attrs.get(name).copied().unwrap_or("absent");
        if b != c {
            rows.push(row(bench, "attr", name, b.to_string(), c.to_string(), None));
        }
    }

    let b_phases: BTreeMap<&str, &crate::report::Phase> =
        base.phases.iter().map(|p| (p.path.as_str(), p)).collect();
    let c_phases: BTreeMap<&str, &crate::report::Phase> =
        cur.phases.iter().map(|p| (p.path.as_str(), p)).collect();
    for path in b_phases.keys().chain(c_phases.keys()).collect::<BTreeSet<_>>() {
        match (b_phases.get(path), c_phases.get(path)) {
            (Some(b), Some(c)) if b.count != c.count || !same(b.total_ms, c.total_ms) => {
                rows.push(row(
                    bench,
                    "phase",
                    path,
                    format!("{}x {:.3}ms", b.count, b.total_ms),
                    format!("{}x {:.3}ms", c.count, c.total_ms),
                    pct(b.total_ms, c.total_ms),
                ));
            }
            (Some(b), None) => {
                rows.push(row(
                    bench,
                    "phase",
                    path,
                    format!("{}x {:.3}ms", b.count, b.total_ms),
                    "absent".into(),
                    None,
                ));
            }
            (None, Some(c)) => {
                rows.push(row(
                    bench,
                    "phase",
                    path,
                    "absent".into(),
                    format!("{}x {:.3}ms", c.count, c.total_ms),
                    None,
                ));
            }
            _ => {}
        }
    }
}

/// Diff two report sets. Reports are matched by bench name (first report
/// wins on a duplicate name); unmatched benches produce a `bench` row.
#[must_use]
pub fn diff_reports(baseline: &[BenchReport], current: &[BenchReport]) -> Vec<DiffRow> {
    let mut b_ix: BTreeMap<&str, &BenchReport> = BTreeMap::new();
    for r in baseline {
        b_ix.entry(r.bench.as_str()).or_insert(r);
    }
    let mut c_ix: BTreeMap<&str, &BenchReport> = BTreeMap::new();
    for r in current {
        c_ix.entry(r.bench.as_str()).or_insert(r);
    }
    let mut rows = Vec::new();
    for bench in b_ix.keys().chain(c_ix.keys()).collect::<BTreeSet<_>>() {
        match (b_ix.get(bench), c_ix.get(bench)) {
            (Some(b), Some(c)) => diff_pair(b, c, &mut rows),
            (Some(_), None) => {
                rows.push(row(bench, "bench", bench, "present".into(), "absent".into(), None));
            }
            (None, Some(_)) => {
                rows.push(row(bench, "bench", bench, "absent".into(), "present".into(), None));
            }
            // Unreachable: every key came from one of the two indexes.
            (None, None) => {}
        }
    }
    rows.sort_by(|a, b| (&a.bench, &a.kind, &a.name).cmp(&(&b.bench, &b.kind, &b.name)));
    rows
}

/// Render diff rows as a stable plain-text table (`"no differences\n"`
/// when empty).
#[must_use]
pub fn render_diff(rows: &[DiffRow]) -> String {
    use std::fmt::Write;
    if rows.is_empty() {
        return "no differences\n".to_string();
    }
    let mut out = String::new();
    for r in rows {
        let delta = r.delta_pct.map_or(String::new(), |d| format!("  ({d:+.2}%)"));
        let _ = writeln!(
            out,
            "{} {} {}: {} -> {}{}",
            r.bench, r.kind, r.name, r.baseline, r.current, delta
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Phase;

    fn report(bench: &str) -> BenchReport {
        let mut r = BenchReport::new(bench, 7, "300");
        r.push_metric("gk/iterations", 120.0, "count");
        r.push_metric("routed", 55.5, "gbps");
        r.push_attr("hash", "aa");
        r.push_phase(Phase::from_wall_stats("perf/te", 3, 2.0, 4.0));
        r
    }

    #[test]
    fn self_diff_is_empty() {
        let a = [report("x"), report("y")];
        assert!(diff_reports(&a, &a).is_empty());
        assert_eq!(render_diff(&diff_reports(&a, &a)), "no differences\n");
    }

    #[test]
    fn input_order_does_not_change_output() {
        let fwd = [report("x"), report("y")];
        let rev = [report("y"), report("x")];
        let mut cur = [report("x"), report("y")];
        cur[0].metrics[0].value = 140.0;
        cur[1].push_metric("extra", 1.0, "count");
        let a = render_diff(&diff_reports(&fwd, &cur));
        let b = render_diff(&diff_reports(&rev, &cur));
        assert_eq!(a, b);
        assert!(a.contains("x metric gk/iterations: 120 -> 140  (+16.67%)"));
        assert!(a.contains("y metric extra: absent -> 1"));
    }

    #[test]
    fn missing_benches_and_meta_changes_surface() {
        let base = [report("x"), report("gone")];
        let mut cur = vec![report("x"), report("new")];
        cur[0].revision = "r2".into();
        let rows = diff_reports(&base, &cur);
        let kinds: Vec<(&str, &str)> =
            rows.iter().map(|r| (r.kind.as_str(), r.name.as_str())).collect();
        assert_eq!(kinds, [("bench", "gone"), ("bench", "new"), ("meta", "revision")]);
        assert_eq!(rows[0].current, "absent");
        assert_eq!(rows[1].baseline, "absent");
    }

    #[test]
    fn phase_changes_report_relative_delta() {
        let base = [report("x")];
        let mut cur = [report("x")];
        cur[0].phases[0].total_ms = 12.0;
        let rows = diff_reports(&base, &cur);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kind, "phase");
        assert!((rows[0].delta_pct.unwrap() - 100.0).abs() < 1e-9);
    }
}
