//! Incident syndromes and symptom explainability (§5).
//!
//! "Define the vector of symptoms (i.e., nodes in the CDG who experience
//! symptoms) as an *incident syndrome*. … We then define *symptom
//! explainability* for team T as the cosine similarity of the incident
//! syndrome to the syndrome if *only* team T caused a failure. This allows
//! for noise, false dependencies and normalizes each team's explainability
//! metric between [0, 1]."
//!
//! The expected syndrome of team T is the indicator vector of T's transitive
//! dependents in the CDG: if only T failed, every team whose service
//! (transitively) depends on T shows symptoms, and nobody else does.
//!
//! Two ablation variants are provided for the benches: Jaccard overlap
//! instead of cosine, and a closure-free variant that only considers direct
//! dependents (`--ablate` in the incident-routing bench).

use serde::{Deserialize, Serialize};
use smn_topology::graph::NodeId;

use crate::coarse::CoarseDepGraph;

/// An incident syndrome: one entry per CDG team (in CDG node order), where
/// entry `i` is the symptom intensity observed at team `i` (commonly the
/// fraction of that team's components with symptoms, or 0/1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Syndrome(pub Vec<f64>);

impl Syndrome {
    /// All-zero syndrome for a CDG of `n` teams.
    #[must_use]
    pub fn zeros(n: usize) -> Syndrome {
        Syndrome(vec![0.0; n])
    }

    /// Build from the set of symptomatic teams (binary syndrome).
    pub fn from_teams(n: usize, symptomatic: impl IntoIterator<Item = NodeId>) -> Syndrome {
        let mut s = Syndrome::zeros(n);
        for t in symptomatic {
            s.0[t.index()] = 1.0;
        }
        s
    }

    /// Number of teams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the syndrome covers zero teams.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether no team shows symptoms.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.0.iter().all(|&v| v == 0.0)
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Cosine similarity of two syndromes in `[0, 1]` (entries are
/// non-negative). Returns 0 when either vector is all-zero.
#[must_use]
pub fn cosine_similarity(a: &Syndrome, b: &Syndrome) -> f64 {
    assert_eq!(a.len(), b.len(), "syndrome dimension mismatch");
    let dot: f64 = a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum();
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// Jaccard overlap of the *supports* of two syndromes (ablation variant).
#[must_use]
pub fn jaccard_similarity(a: &Syndrome, b: &Syndrome) -> f64 {
    assert_eq!(a.len(), b.len(), "syndrome dimension mismatch");
    let mut inter = 0usize;
    let mut union = 0usize;
    for (x, y) in a.0.iter().zip(&b.0) {
        let (xa, ya) = (*x > 0.0, *y > 0.0);
        if xa && ya {
            inter += 1;
        }
        if xa || ya {
            union += 1;
        }
    }
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Similarity measure used to compare syndromes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Similarity {
    /// Cosine similarity (the paper's metric).
    Cosine,
    /// Jaccard overlap of supports (ablation).
    Jaccard,
}

/// How expected syndromes are derived from the CDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Propagation {
    /// Transitive closure of dependents (the paper's semantics: a fault
    /// fans out through every layer above it).
    Closure,
    /// Direct dependents only (ablation: no fan-out modeling).
    DirectOnly,
}

/// Computes expected syndromes and explainability vectors against a CDG.
#[derive(Debug, Clone)]
pub struct Explainability<'a> {
    cdg: &'a CoarseDepGraph,
    /// Precomputed expected syndrome per team.
    expected: Vec<Syndrome>,
    similarity: Similarity,
}

impl<'a> Explainability<'a> {
    /// Precompute expected single-team-failure syndromes for `cdg` with the
    /// paper's settings (closure propagation, cosine similarity).
    #[must_use]
    pub fn new(cdg: &'a CoarseDepGraph) -> Self {
        Self::with_options(cdg, Propagation::Closure, Similarity::Cosine)
    }

    /// Variant constructor for ablations.
    #[must_use]
    pub fn with_options(
        cdg: &'a CoarseDepGraph,
        propagation: Propagation,
        similarity: Similarity,
    ) -> Self {
        let n = cdg.len();
        let expected = (0..n as u32)
            .map(|t| {
                let team = NodeId(t);
                match propagation {
                    Propagation::Closure => Syndrome::from_teams(n, cdg.dependents_of(team)),
                    Propagation::DirectOnly => {
                        let direct = cdg.graph.predecessors(team).chain(std::iter::once(team));
                        Syndrome::from_teams(n, direct)
                    }
                }
            })
            .collect();
        Self { cdg, expected, similarity }
    }

    /// The CDG this was built against.
    #[must_use]
    pub fn cdg(&self) -> &CoarseDepGraph {
        self.cdg
    }

    /// Expected syndrome if only `team` failed.
    #[must_use]
    pub fn expected_syndrome(&self, team: NodeId) -> &Syndrome {
        &self.expected[team.index()]
    }

    /// Symptom explainability of `team` for an observed syndrome: how well
    /// "only `team` failed" explains what is seen, in `[0, 1]`.
    #[must_use]
    pub fn explainability(&self, observed: &Syndrome, team: NodeId) -> f64 {
        let exp = &self.expected[team.index()];
        match self.similarity {
            Similarity::Cosine => cosine_similarity(observed, exp),
            Similarity::Jaccard => jaccard_similarity(observed, exp),
        }
    }

    /// Explainability of every team for `observed`, in CDG node order —
    /// the extra feature vector the CLTO feeds its classifier (§5).
    #[must_use]
    pub fn explainability_vector(&self, observed: &Syndrome) -> Vec<f64> {
        (0..self.cdg.len() as u32).map(|t| self.explainability(observed, NodeId(t))).collect()
    }

    /// The team whose single-failure syndrome best explains `observed`
    /// (highest explainability; ties broken by lowest node id). `None` when
    /// the observed syndrome is quiet.
    #[must_use]
    pub fn best_team(&self, observed: &Syndrome) -> Option<NodeId> {
        if observed.is_quiet() {
            return None;
        }
        let v = self.explainability_vector(observed);
        let (best, _) = v.iter().enumerate().max_by(|(ia, a), (ib, b)| {
            a.total_cmp(b).then(ib.cmp(ia))
            // prefer lower index on ties
        })?;
        Some(NodeId(best as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// app -> platform -> network; monitoring -> app.
    fn chain_cdg() -> CoarseDepGraph {
        let mut cdg = CoarseDepGraph::new();
        let app = cdg.add_team("app");
        let platform = cdg.add_team("platform");
        let net = cdg.add_team("network");
        let mon = cdg.add_team("monitoring");
        cdg.add_dependency(app, platform);
        cdg.add_dependency(platform, net);
        cdg.add_dependency(mon, app);
        cdg
    }

    #[test]
    fn expected_syndrome_is_dependent_closure() {
        let cdg = chain_cdg();
        let ex = Explainability::new(&cdg);
        let net = cdg.by_name("network").unwrap();
        // A network fault shows symptoms everywhere (all depend on it).
        assert_eq!(ex.expected_syndrome(net).0, vec![1.0, 1.0, 1.0, 1.0]);
        let app = cdg.by_name("app").unwrap();
        // An app fault shows at app and monitoring only.
        assert_eq!(ex.expected_syndrome(app).0, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn direct_only_propagation_is_shallower() {
        let cdg = chain_cdg();
        let ex = Explainability::with_options(&cdg, Propagation::DirectOnly, Similarity::Cosine);
        let net = cdg.by_name("network").unwrap();
        // Only platform directly depends on network.
        assert_eq!(ex.expected_syndrome(net).0, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn cosine_basics() {
        let a = Syndrome(vec![1.0, 0.0, 1.0]);
        let b = Syndrome(vec![1.0, 0.0, 1.0]);
        let c = Syndrome(vec![0.0, 1.0, 0.0]);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&a, &c), 0.0);
        assert_eq!(cosine_similarity(&a, &Syndrome::zeros(3)), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_rejects_mismatched_dims() {
        let _ = cosine_similarity(&Syndrome::zeros(2), &Syndrome::zeros(3));
    }

    #[test]
    fn jaccard_basics() {
        let a = Syndrome(vec![1.0, 1.0, 0.0]);
        let b = Syndrome(vec![0.5, 0.0, 0.0]);
        assert_eq!(jaccard_similarity(&a, &b), 0.5);
        assert_eq!(jaccard_similarity(&Syndrome::zeros(3), &Syndrome::zeros(3)), 0.0);
    }

    #[test]
    fn explainability_in_unit_interval_and_discriminative() {
        let cdg = chain_cdg();
        let ex = Explainability::new(&cdg);
        let net = cdg.by_name("network").unwrap();
        let app = cdg.by_name("app").unwrap();
        // Observed: full fan-out (network-style failure).
        let observed = Syndrome(vec![1.0, 1.0, 1.0, 1.0]);
        let e_net = ex.explainability(&observed, net);
        let e_app = ex.explainability(&observed, app);
        assert!((0.0..=1.0).contains(&e_net) && (0.0..=1.0).contains(&e_app));
        assert!(e_net > e_app, "network should best explain full fan-out");
        assert_eq!(ex.best_team(&observed), Some(net));
    }

    #[test]
    fn explainability_tolerates_noise() {
        let cdg = chain_cdg();
        let ex = Explainability::new(&cdg);
        let app = cdg.by_name("app").unwrap();
        // App failure syndrome plus a noisy platform blip.
        let observed = Syndrome(vec![1.0, 0.3, 0.0, 1.0]);
        assert_eq!(ex.best_team(&observed), Some(app));
        let e = ex.explainability(&observed, app);
        assert!(e > 0.9, "noise should only mildly reduce explainability: {e}");
    }

    #[test]
    fn quiet_syndrome_has_no_best_team() {
        let cdg = chain_cdg();
        let ex = Explainability::new(&cdg);
        assert_eq!(ex.best_team(&Syndrome::zeros(4)), None);
    }

    #[test]
    fn explainability_vector_matches_pointwise() {
        let cdg = chain_cdg();
        let ex = Explainability::new(&cdg);
        let observed = Syndrome(vec![1.0, 1.0, 0.0, 1.0]);
        let v = ex.explainability_vector(&observed);
        assert_eq!(v.len(), 4);
        for (i, &val) in v.iter().enumerate() {
            assert_eq!(val, ex.explainability(&observed, NodeId(i as u32)));
        }
    }
}
