//! # smn-depgraph
//!
//! Dependency-graph substrate for the SMN reproduction: fine-grained
//! component graphs ([`fine`]), Coarse Dependency Graphs at team granularity
//! ([`coarse`]), typed fine-graph churn deltas for the streaming path
//! ([`delta`]), incident syndromes and the paper's *symptom explainability*
//! metric ([`syndrome`]), and Graphviz export ([`dot`], Figure 3).
//!
//! ```
//! use smn_depgraph::coarse::CoarseDepGraph;
//! use smn_depgraph::syndrome::{Explainability, Syndrome};
//!
//! let mut cdg = CoarseDepGraph::new();
//! let app = cdg.add_team("app");
//! let net = cdg.add_team("network");
//! cdg.add_dependency(app, net);
//!
//! let ex = Explainability::new(&cdg);
//! // Both teams symptomatic: a network fault explains it best.
//! let observed = Syndrome(vec![1.0, 1.0]);
//! assert_eq!(ex.best_team(&observed), Some(net));
//! ```

#![warn(missing_docs)]

pub mod coarse;
pub mod delta;
pub mod dot;
pub mod fine;
pub mod refine;
pub mod syndrome;

pub use coarse::CoarseDepGraph;
pub use fine::FineDepGraph;
pub use syndrome::{Explainability, Syndrome};
