//! Fine-grained dependency graphs: component-level runtime dependencies.
//!
//! "A dependency graph contains edges x → y if x depends on y at runtime.
//! … a fine-grained dependency graph shows dependencies between service
//! components (useful for root causing)" (§5). Teams may maintain these for
//! their own services; the SMN does *not* centralize them (that is the
//! maintainability problem coarsening avoids) — but the incident simulator
//! uses one as ground truth to propagate faults.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use smn_topology::graph::{DiGraph, EdgeId, NodeId};

/// Which layer of the stack a component lives in (L1–L7 in SMN terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Physical / optical (L1).
    Physical,
    /// Network fabric and WAN (L2/L3).
    Network,
    /// Hosts, hypervisors, clusters (infrastructure).
    Infrastructure,
    /// Databases, caches, queues (platform services).
    Platform,
    /// User-facing application services (L7).
    Application,
    /// Monitoring and probing agents.
    Monitoring,
}

impl Layer {
    /// All layers, physical-first — the order faults propagate downward
    /// through the hosting chain.
    pub const ALL: [Layer; 6] = [
        Layer::Physical,
        Layer::Network,
        Layer::Infrastructure,
        Layer::Platform,
        Layer::Application,
        Layer::Monitoring,
    ];

    /// Where this dependency layer sits in the unified
    /// [`smn_topology::stack::LayerId`] stack: `Physical` is the optical
    /// substrate (L1), `Network` is the WAN fabric (L3), and everything
    /// above — infrastructure, platform, application, monitoring — is
    /// application-side (L7). This is the alignment that lets the incident
    /// engine and the coarsening layer treat `FineDepGraph` components and
    /// stack elements uniformly.
    #[must_use]
    pub fn stack_layer(self) -> smn_topology::LayerId {
        match self {
            Layer::Physical => smn_topology::LayerId::L1,
            Layer::Network => smn_topology::LayerId::L3,
            Layer::Infrastructure | Layer::Platform | Layer::Application | Layer::Monitoring => {
                smn_topology::LayerId::L7
            }
        }
    }
}

/// A fine-grained component: the unit faults are injected into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Unique name, e.g. `"cassandra-1"`.
    pub name: String,
    /// The service this component is an instance of, e.g. `"cassandra"`.
    pub service: String,
    /// Owning team (coarse label), e.g. `"storage"`.
    pub team: String,
    /// Stack layer.
    pub layer: Layer,
}

/// Kind of runtime dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DependencyKind {
    /// Synchronous RPC / query dependency.
    Call,
    /// Runs-on dependency (service on host, host on hypervisor).
    Hosting,
    /// Network-path dependency (traffic traverses).
    Network,
    /// Observes dependency (probe/monitor watches target).
    Observes,
}

/// A fine-grained dependency graph over [`Component`]s.
///
/// Edges read "src depends on dst"; a fault at `dst` can therefore affect
/// `src`. Wraps [`DiGraph`] with name lookups and team queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FineDepGraph {
    /// Underlying graph (public for algorithms).
    pub graph: DiGraph<Component, DependencyKind>,
    name_index: HashMap<String, NodeId>,
}

impl FineDepGraph {
    /// Empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component.
    ///
    /// # Panics
    /// Panics on duplicate component names.
    pub fn add_component(&mut self, c: Component) -> NodeId {
        assert!(!self.name_index.contains_key(&c.name), "duplicate component {}", c.name);
        let name = c.name.clone();
        let id = self.graph.add_node(c);
        self.name_index.insert(name, id);
        id
    }

    /// Declare that `src` depends on `dst`.
    pub fn add_dependency(&mut self, src: NodeId, dst: NodeId, kind: DependencyKind) -> EdgeId {
        self.graph.add_edge(src, dst, kind)
    }

    /// Component id by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Component payload.
    #[must_use]
    pub fn component(&self, id: NodeId) -> &Component {
        self.graph.node(id)
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// True when the graph has no components.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// All components of a team.
    #[must_use]
    pub fn team_components(&self, team: &str) -> Vec<NodeId> {
        self.graph.nodes().filter(|(_, c)| c.team == team).map(|(id, _)| id).collect()
    }

    /// Distinct team names in insertion order.
    #[must_use]
    pub fn teams(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for (_, c) in self.graph.nodes() {
            if !out.contains(&c.team) {
                out.push(c.team.clone());
            }
        }
        out
    }

    /// Components that transitively depend on `failed` (the blast radius of
    /// a fault at `failed`, including itself).
    #[must_use]
    pub fn blast_radius(&self, failed: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.graph.reaching(failed).into_iter().collect();
        v.sort();
        v
    }

    /// The L7 face of this graph for the unified layer stack: component
    /// names in node order, so `ComponentId(i)` is node `i`.
    #[must_use]
    pub fn service_layer(&self) -> smn_topology::ServiceLayer {
        smn_topology::ServiceLayer::from_names(
            self.graph.nodes().map(|(_, c)| c.name.clone()).collect(),
        )
    }

    /// Components whose [`Layer`] maps onto the given stack layer, as
    /// typed stack [`smn_topology::ComponentId`]s in node order.
    #[must_use]
    pub fn components_in_stack_layer(
        &self,
        layer: smn_topology::LayerId,
    ) -> Vec<smn_topology::ComponentId> {
        self.graph
            .nodes()
            .filter(|(_, c)| c.layer.stack_layer() == layer)
            .map(|(id, _)| smn_topology::ComponentId(id.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(name: &str, service: &str, team: &str, layer: Layer) -> Component {
        Component { name: name.into(), service: service.into(), team: team.into(), layer }
    }

    /// web-1 -> cache-1 -> db-1; db-1 hosted-on hv-1.
    fn chain() -> (FineDepGraph, [NodeId; 4]) {
        let mut g = FineDepGraph::new();
        let web = g.add_component(comp("web-1", "web", "app", Layer::Application));
        let cache = g.add_component(comp("cache-1", "cache", "platform", Layer::Platform));
        let db = g.add_component(comp("db-1", "db", "storage", Layer::Platform));
        let hv = g.add_component(comp("hv-1", "hypervisor", "infra", Layer::Infrastructure));
        g.add_dependency(web, cache, DependencyKind::Call);
        g.add_dependency(cache, db, DependencyKind::Call);
        g.add_dependency(db, hv, DependencyKind::Hosting);
        (g, [web, cache, db, hv])
    }

    #[test]
    fn lookup_and_teams() {
        let (g, ids) = chain();
        assert_eq!(g.len(), 4);
        assert_eq!(g.by_name("db-1"), Some(ids[2]));
        assert!(g.by_name("nope").is_none());
        assert_eq!(g.teams(), vec!["app", "platform", "storage", "infra"]);
        assert_eq!(g.team_components("platform"), vec![ids[1]]);
    }

    #[test]
    #[should_panic(expected = "duplicate component")]
    fn duplicate_component_rejected() {
        let (mut g, _) = chain();
        g.add_component(comp("web-1", "web", "app", Layer::Application));
    }

    #[test]
    fn layers_align_with_the_unified_stack() {
        use smn_topology::LayerId;
        assert_eq!(Layer::Physical.stack_layer(), LayerId::L1);
        assert_eq!(Layer::Network.stack_layer(), LayerId::L3);
        for l in [Layer::Infrastructure, Layer::Platform, Layer::Application, Layer::Monitoring] {
            assert_eq!(l.stack_layer(), LayerId::L7);
        }
        // Every Layer maps somewhere, and ALL covers the enum.
        assert_eq!(Layer::ALL.len(), 6);
    }

    #[test]
    fn service_layer_mirrors_node_order() {
        use smn_topology::{ComponentId, LayerId, NetLayer};
        let (g, ids) = chain();
        let sl = g.service_layer();
        assert_eq!(sl.element_count(), 4);
        assert_eq!(sl.id_of("db-1"), Some(ComponentId(ids[2].0)));
        assert_eq!(sl.name_of(ComponentId(0)), Some("web-1"));
        // All four components here are L7-side.
        assert_eq!(g.components_in_stack_layer(LayerId::L7).len(), 4);
        assert!(g.components_in_stack_layer(LayerId::L1).is_empty());
    }

    #[test]
    fn blast_radius_is_transitive_dependents() {
        let (g, ids) = chain();
        // Hypervisor fault affects everything above it.
        assert_eq!(g.blast_radius(ids[3]), vec![ids[0], ids[1], ids[2], ids[3]]);
        // Web fault affects only web.
        assert_eq!(g.blast_radius(ids[0]), vec![ids[0]]);
        // Cache fault affects web and cache but not db.
        assert_eq!(g.blast_radius(ids[1]), vec![ids[0], ids[1]]);
    }
}
