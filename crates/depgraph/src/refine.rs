//! CDG refinement: maintaining the sketch over time.
//!
//! §5: "engineers can directly sketch the CDG … and refine it over time."
//! A sketched CDG will have missing edges, and missing edges cause a
//! characteristic failure: incidents whose observed syndrome contains
//! symptomatic teams *outside* the responsible team's dependency closure,
//! which drags its explainability down and misroutes the incident.
//!
//! [`suggest_edges`] inverts that signal: given resolved incidents
//! (observed syndrome + the team that turned out to be responsible), it
//! proposes the dependency edges whose absence best explains the residual
//! symptoms, ranked by how many incidents each would fix. This closes the
//! maintenance loop — the CDG stays cheap to keep because the SMN itself
//! points at its gaps.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use smn_topology::graph::NodeId;

use crate::coarse::CoarseDepGraph;
use crate::syndrome::Syndrome;

/// A resolved incident: what was observed and who was responsible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedIncident {
    /// The observed syndrome at the time.
    pub syndrome: Syndrome,
    /// The team that turned out to be the root cause.
    pub responsible: String,
}

/// A proposed CDG edge `from` → `to` ("`from` depends on `to`").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuggestedEdge {
    /// The team that showed unexplained symptoms.
    pub from: String,
    /// The responsible team it apparently depends on.
    pub to: String,
    /// How many resolved incidents this edge would help explain.
    pub support: usize,
}

/// Propose missing dependency edges from resolved-incident history.
///
/// For each incident, every symptomatic team not in the responsible team's
/// dependency closure is an *unexplained symptom*; the candidate edge
/// `symptomatic → responsible` would explain it. Candidates are ranked by
/// support and returned when supported by at least `min_support` incidents.
/// Teams unknown to the CDG are ignored (resolutions can involve teams the
/// sketch has not modeled yet — that is a different refinement).
#[must_use]
pub fn suggest_edges(
    cdg: &CoarseDepGraph,
    history: &[ResolvedIncident],
    min_support: usize,
) -> Vec<SuggestedEdge> {
    let mut support: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for incident in history {
        let Some(responsible) = cdg.by_name(&incident.responsible) else {
            continue;
        };
        if incident.syndrome.len() != cdg.len() {
            continue;
        }
        let closure = cdg.dependents_of(responsible);
        for (i, &sym) in incident.syndrome.0.iter().enumerate() {
            let team = NodeId(i as u32);
            if sym > 0.0 && !closure.contains(&team) && team != responsible {
                *support.entry((team, responsible)).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<SuggestedEdge> = support
        .into_iter()
        .filter(|&(_, s)| s >= min_support)
        .filter(|&((from, to), _)| cdg.graph.find_edge(from, to).is_none())
        .map(|((from, to), support)| SuggestedEdge {
            from: cdg.team(from).name.clone(),
            to: cdg.team(to).name.clone(),
            support,
        })
        .collect();
    out.sort_by(|a, b| b.support.cmp(&a.support).then(a.from.cmp(&b.from)));
    out
}

/// [`suggest_edges`] wrapped in a `cdg/refine` span: history size and
/// suggestion count land as exit fields, and each proposed edge is audited
/// (actor `depgraph/refine`) with its support as evidence.
pub fn suggest_edges_observed(
    cdg: &CoarseDepGraph,
    history: &[ResolvedIncident],
    min_support: usize,
    obs: &smn_obs::Obs,
) -> Vec<SuggestedEdge> {
    if !obs.is_enabled() {
        return suggest_edges(cdg, history, min_support);
    }
    let mut span = obs.span("cdg/refine");
    let suggestions = suggest_edges(cdg, history, min_support);
    span.field("incidents", history.len());
    span.field("min_support", min_support);
    span.field("suggestions", suggestions.len());
    obs.inc_by("cdg_edges_suggested_total", suggestions.len() as u64);
    for s in &suggestions {
        obs.audit(
            "depgraph/refine",
            "suggest-edge",
            &[("from", s.from.clone()), ("to", s.to.clone()), ("support", s.support.to_string())],
        );
    }
    suggestions
}

/// [`suggest_edges_observed`] with the span opened as a profiled phase:
/// identical trace/metric/audit output, plus the refinement's wall time
/// folds into the perf trajectory's wall profile under `cdg/refine`.
pub fn suggest_edges_profiled(
    cdg: &CoarseDepGraph,
    history: &[ResolvedIncident],
    min_support: usize,
    obs: &smn_obs::Obs,
) -> Vec<SuggestedEdge> {
    if !obs.is_enabled() {
        return suggest_edges(cdg, history, min_support);
    }
    let mut phase = obs.phase("cdg/refine");
    let suggestions = suggest_edges(cdg, history, min_support);
    phase.field("incidents", history.len());
    phase.field("min_support", min_support);
    phase.field("suggestions", suggestions.len());
    obs.inc_by("cdg_edges_suggested_total", suggestions.len() as u64);
    for s in &suggestions {
        obs.audit(
            "depgraph/refine",
            "suggest-edge",
            &[("from", s.from.clone()), ("to", s.to.clone()), ("support", s.support.to_string())],
        );
    }
    suggestions
}

/// Apply a suggestion to the CDG (the "refine" step an engineer confirms).
///
/// Returns `false` when either team is unknown (nothing applied).
pub fn apply_suggestion(cdg: &mut CoarseDepGraph, suggestion: &SuggestedEdge) -> bool {
    match (cdg.by_name(&suggestion.from), cdg.by_name(&suggestion.to)) {
        (Some(from), Some(to)) => {
            cdg.add_dependency(from, to);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// app -> platform -> network, but the sketch is missing
    /// monitoring -> app.
    fn sketched_cdg() -> CoarseDepGraph {
        let mut cdg = CoarseDepGraph::new();
        let app = cdg.add_team("app");
        let platform = cdg.add_team("platform");
        let net = cdg.add_team("network");
        let _mon = cdg.add_team("monitoring");
        cdg.add_dependency(app, platform);
        cdg.add_dependency(platform, net);
        cdg
    }

    fn incident(cdg: &CoarseDepGraph, symptomatic: &[&str], responsible: &str) -> ResolvedIncident {
        let mut syndrome = Syndrome::zeros(cdg.len());
        for t in symptomatic {
            syndrome.0[cdg.by_name(t).unwrap().index()] = 1.0;
        }
        ResolvedIncident { syndrome, responsible: responsible.to_string() }
    }

    #[test]
    fn missing_edge_is_suggested_with_support() {
        let cdg = sketched_cdg();
        // Three app incidents where monitoring also alerted: the sketch
        // can't explain monitoring's symptoms.
        let history: Vec<ResolvedIncident> =
            (0..3).map(|_| incident(&cdg, &["app", "monitoring"], "app")).collect();
        let suggestions = suggest_edges(&cdg, &history, 2);
        assert_eq!(suggestions.len(), 1);
        assert_eq!(suggestions[0].from, "monitoring");
        assert_eq!(suggestions[0].to, "app");
        assert_eq!(suggestions[0].support, 3);
    }

    #[test]
    fn explained_symptoms_produce_no_suggestions() {
        let cdg = sketched_cdg();
        // Full fan-out from network is entirely inside network's closure.
        let history = vec![incident(&cdg, &["app", "platform", "network"], "network")];
        assert!(suggest_edges(&cdg, &history, 1).is_empty());
    }

    #[test]
    fn min_support_filters_noise() {
        let cdg = sketched_cdg();
        let history = vec![incident(&cdg, &["app", "monitoring"], "app")];
        assert!(suggest_edges(&cdg, &history, 2).is_empty());
        assert_eq!(suggest_edges(&cdg, &history, 1).len(), 1);
    }

    #[test]
    fn existing_edges_never_suggested() {
        let cdg = sketched_cdg();
        // Platform symptoms during a network incident are already explained;
        // app symptoms during a platform incident likewise.
        let history = vec![
            incident(&cdg, &["platform", "network"], "network"),
            incident(&cdg, &["app", "platform"], "platform"),
        ];
        assert!(suggest_edges(&cdg, &history, 1).is_empty());
    }

    #[test]
    fn applying_suggestion_fixes_routing() {
        use crate::syndrome::Explainability;
        let mut cdg = sketched_cdg();
        let obs = incident(&cdg, &["app", "monitoring"], "app").syndrome;
        // Before refinement the sketch cannot fully explain the syndrome.
        let before = {
            let ex = Explainability::new(&cdg);
            ex.explainability(&obs, cdg.by_name("app").unwrap())
        };
        let history: Vec<ResolvedIncident> =
            (0..3).map(|_| incident(&cdg, &["app", "monitoring"], "app")).collect();
        let suggestions = suggest_edges(&cdg, &history, 2);
        assert!(apply_suggestion(&mut cdg, &suggestions[0]));
        let after = {
            let ex = Explainability::new(&cdg);
            ex.explainability(&obs, cdg.by_name("app").unwrap())
        };
        assert!(after > before, "explainability improves: {before} -> {after}");
        assert!((after - 1.0).abs() < 1e-9, "now perfectly explained");
        // Re-suggesting yields nothing: the gap is closed.
        assert!(suggest_edges(&cdg, &history, 1).is_empty());
    }

    #[test]
    fn observed_suggestions_hit_the_audit_trail() {
        let cdg = sketched_cdg();
        let history: Vec<ResolvedIncident> =
            (0..3).map(|_| incident(&cdg, &["app", "monitoring"], "app")).collect();
        let obs = smn_obs::Obs::enabled(smn_obs::clock::SimClock::new());
        let suggestions = suggest_edges_observed(&cdg, &history, 2, &obs);
        assert_eq!(suggestions, suggest_edges(&cdg, &history, 2));
        assert_eq!(obs.counter("cdg_edges_suggested_total"), 1);
        assert_eq!(obs.audit_len(), 1);
        assert!(obs.audit_jsonl().contains("\"suggest-edge\""));
    }

    #[test]
    fn unknown_teams_ignored() {
        let mut cdg = sketched_cdg();
        let history = vec![ResolvedIncident {
            syndrome: Syndrome::zeros(cdg.len()),
            responsible: "nobody".into(),
        }];
        assert!(suggest_edges(&cdg, &history, 1).is_empty());
        let bogus = SuggestedEdge { from: "ghost".into(), to: "app".into(), support: 1 };
        assert!(!apply_suggestion(&mut cdg, &bogus));
    }
}
