//! Graphviz (DOT) export for dependency graphs — regenerates Figure 3.

use std::fmt::Write as _;

use crate::coarse::CoarseDepGraph;
use crate::fine::FineDepGraph;

/// Render a CDG as a Graphviz digraph (Figure 3's team-level view).
#[must_use]
pub fn cdg_to_dot(cdg: &CoarseDepGraph, title: &str) -> String {
    // `fmt::Write` into a String is infallible; discard the Ok results
    // rather than panicking on an error that cannot happen.
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=box, style=rounded];");
    for (id, team) in cdg.graph.nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n({} components)\"];",
            id.index(),
            escape(&team.name),
            team.component_count
        );
    }
    for (_, e) in cdg.graph.edges() {
        let _ = writeln!(out, "  n{} -> n{};", e.src.index(), e.dst.index());
    }
    out.push_str("}\n");
    out
}

/// Render a fine-grained dependency graph as DOT, clustered by team.
#[must_use]
pub fn fine_to_dot(fine: &FineDepGraph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "  rankdir=BT;");
    for (ti, team) in fine.teams().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{ti} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(team));
        for id in fine.team_components(team) {
            let _ = writeln!(
                out,
                "    n{} [label=\"{}\"];",
                id.index(),
                escape(&fine.component(id).name)
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for (_, e) in fine.graph.edges() {
        let _ = writeln!(out, "  n{} -> n{};", e.src.index(), e.dst.index());
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fine::{Component, DependencyKind, Layer};

    #[test]
    fn cdg_dot_contains_nodes_and_edges() {
        let mut cdg = CoarseDepGraph::new();
        let a = cdg.add_team("app");
        let n = cdg.add_team("network");
        cdg.add_dependency(a, n);
        let dot = cdg_to_dot(&cdg, "test");
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("label=\"app"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn fine_dot_clusters_by_team() {
        let mut g = FineDepGraph::new();
        let a = g.add_component(Component {
            name: "web-1".into(),
            service: "web".into(),
            team: "app".into(),
            layer: Layer::Application,
        });
        let b = g.add_component(Component {
            name: "db-1".into(),
            service: "db".into(),
            team: "storage".into(),
            layer: Layer::Platform,
        });
        g.add_dependency(a, b, DependencyKind::Call);
        let dot = fine_to_dot(&g, "fine");
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    fn quotes_escaped() {
        let mut cdg = CoarseDepGraph::new();
        cdg.add_team("we\"ird");
        let dot = cdg_to_dot(&cdg, "t\"itle");
        assert!(dot.contains("we\\\"ird"));
        assert!(dot.contains("t\\\"itle"));
    }
}
