//! Typed fine-graph deltas — component/dependency churn for one tick.
//!
//! A [`GraphDelta`] records what changed in a fine-grained dependency
//! graph during one streaming tick: components that came up and runtime
//! dependencies that appeared. Deltas are *additive only* — the underlying
//! [`DiGraph`](smn_topology::graph::DiGraph) is append-only, and that
//! restriction is what makes incremental CDG maintenance order-identical
//! to a batch [`CoarseDepGraph::from_fine`](crate::coarse::CoarseDepGraph)
//! rebuild: contraction assigns team nodes in first-appearance order over
//! fine nodes and coarse edges in first-occurrence order over fine edges,
//! so appending churn at the end of the fine graph appends the induced
//! coarse churn at the end of the CDG.

use serde::{Deserialize, Serialize};

use crate::fine::{Component, DependencyKind, FineDepGraph};

/// A dependency to add, by component name (names are the stable identity
/// across the fine graph's lifetime; node ids are assigned on insert).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependencyAdd {
    /// Depending component.
    pub src: String,
    /// Depended-on component.
    pub dst: String,
    /// Kind of runtime dependency.
    pub kind: DependencyKind,
}

/// Fine-graph churn observed during one streaming tick.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Tick index; deltas must be applied in strictly increasing order.
    pub tick: u64,
    /// Components that came up this tick, in arrival order.
    pub add_components: Vec<Component>,
    /// Dependencies that appeared this tick, in arrival order. Endpoints
    /// may be pre-existing components or components added this tick.
    pub add_dependencies: Vec<DependencyAdd>,
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaError {
    /// A component in `add_components` already exists.
    DuplicateComponent(String),
    /// A dependency endpoint names a component the graph does not have.
    UnknownComponent(String),
    /// A component's owning team is missing from the coarse graph (the
    /// CDG being patched was not derived from the fine graph it is being
    /// reconciled against).
    UnknownTeam(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::DuplicateComponent(name) => {
                write!(f, "delta re-adds existing component {name:?}")
            }
            DeltaError::UnknownComponent(name) => {
                write!(f, "delta references unknown component {name:?}")
            }
            DeltaError::UnknownTeam(name) => {
                write!(f, "delta references team {name:?} missing from the coarse graph")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

impl GraphDelta {
    /// An empty delta for `tick`.
    #[must_use]
    pub fn new(tick: u64) -> Self {
        Self { tick, ..Self::default() }
    }

    /// True when the delta carries no churn.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.add_components.is_empty() && self.add_dependencies.is_empty()
    }

    /// Queue a component addition (builder-style).
    pub fn push_component(&mut self, c: Component) {
        self.add_components.push(c);
    }

    /// Queue a dependency addition by endpoint names (builder-style).
    pub fn push_dependency(
        &mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        kind: DependencyKind,
    ) {
        self.add_dependencies.push(DependencyAdd { src: src.into(), dst: dst.into(), kind });
    }

    /// Validate the delta against `fine` without mutating anything:
    /// components must be new, dependency endpoints must resolve (to an
    /// existing component or one added earlier in this delta).
    ///
    /// # Errors
    /// The first [`DeltaError`] found, in delta order.
    pub fn validate(&self, fine: &FineDepGraph) -> Result<(), DeltaError> {
        for c in &self.add_components {
            if fine.by_name(&c.name).is_some() {
                return Err(DeltaError::DuplicateComponent(c.name.clone()));
            }
        }
        let added = |name: &str| self.add_components.iter().any(|c| c.name == name);
        for d in &self.add_dependencies {
            for end in [&d.src, &d.dst] {
                if fine.by_name(end).is_none() && !added(end) {
                    return Err(DeltaError::UnknownComponent(end.clone()));
                }
            }
        }
        Ok(())
    }

    /// Apply the delta to a fine graph: components first (so same-tick
    /// dependencies can reference them), then dependencies, both in
    /// arrival order. Validates up front, so a failed apply leaves `fine`
    /// untouched.
    ///
    /// # Errors
    /// A [`DeltaError`] when validation fails; `fine` is unmodified.
    pub fn apply_to_fine(&self, fine: &mut FineDepGraph) -> Result<(), DeltaError> {
        self.validate(fine)?;
        for c in &self.add_components {
            fine.add_component(c.clone());
        }
        for d in &self.add_dependencies {
            // Validated above; a missing endpoint here would be a bug in
            // `validate`, so fall back to skipping rather than panicking.
            let (Some(src), Some(dst)) = (fine.by_name(&d.src), fine.by_name(&d.dst)) else {
                continue;
            };
            fine.add_dependency(src, dst, d.kind);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fine::Layer;

    fn comp(name: &str, team: &str) -> Component {
        Component {
            name: name.into(),
            service: name.into(),
            team: team.into(),
            layer: Layer::Application,
        }
    }

    fn base() -> FineDepGraph {
        let mut g = FineDepGraph::new();
        let a = g.add_component(comp("web-1", "app"));
        let b = g.add_component(comp("db-1", "storage"));
        g.add_dependency(a, b, DependencyKind::Call);
        g
    }

    #[test]
    fn apply_adds_components_and_dependencies() {
        let mut g = base();
        let mut d = GraphDelta::new(0);
        d.push_component(comp("cache-1", "platform"));
        d.push_dependency("web-1", "cache-1", DependencyKind::Call);
        d.push_dependency("cache-1", "db-1", DependencyKind::Call);
        assert!(!d.is_empty());
        d.apply_to_fine(&mut g).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.graph.edge_count(), 3);
        assert_eq!(g.teams(), vec!["app", "storage", "platform"]);
    }

    #[test]
    fn duplicate_component_rejected_without_mutation() {
        let mut g = base();
        let mut d = GraphDelta::new(1);
        d.push_component(comp("web-1", "app"));
        let err = d.apply_to_fine(&mut g).unwrap_err();
        assert_eq!(err, DeltaError::DuplicateComponent("web-1".into()));
        assert_eq!(g.len(), 2, "failed apply leaves the graph untouched");
    }

    #[test]
    fn unknown_endpoint_rejected_without_mutation() {
        let mut g = base();
        let mut d = GraphDelta::new(1);
        d.push_component(comp("cache-1", "platform"));
        d.push_dependency("cache-1", "ghost-9", DependencyKind::Call);
        let err = d.apply_to_fine(&mut g).unwrap_err();
        assert_eq!(err, DeltaError::UnknownComponent("ghost-9".into()));
        assert_eq!(g.len(), 2);
        assert!(err.to_string().contains("ghost-9"));
    }
}
