//! Coarse Dependency Graphs (CDGs): team-level dependencies.
//!
//! "A coarse-grained dependency graph (CDG) shows dependencies of various
//! services and teams … we propose the SMN only maintain a coarse dependency
//! graph for the cloud" (§5). A CDG is cheap to sketch and maintain — at the
//! cost of *false dependencies*: the CDG edge `A → B` exists if *any*
//! component of team A depends on any component of team B, so a fault in B
//! may appear to implicate components of A that are actually unaffected.
//! [`CoarseDepGraph::false_dependency_rate`] quantifies exactly that loss.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use smn_topology::graph::{DiGraph, NodeId};

use crate::delta::{DeltaError, GraphDelta};
use crate::fine::FineDepGraph;

/// A team: the node granularity of a CDG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Team {
    /// Team name, e.g. `"network"`.
    pub name: String,
    /// Number of fine-grained components the team owns (0 when the CDG was
    /// sketched by hand rather than derived).
    pub component_count: usize,
}

/// What one [`CoarseDepGraph::apply_delta`] call actually changed — the
/// incremental work, as opposed to the full-rebuild work a batch
/// [`CoarseDepGraph::from_fine`] would redo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdgDeltaStats {
    /// Teams that did not exist before this delta.
    pub new_teams: usize,
    /// Component additions absorbed by already-existing teams.
    pub grown_teams: usize,
    /// Coarse edges induced for the first time by this delta.
    pub new_edges: usize,
}

/// A coarse (team-level) dependency graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoarseDepGraph {
    /// Underlying graph; edges read "src team depends on dst team".
    pub graph: DiGraph<Team, ()>,
    name_index: HashMap<String, NodeId>,
}

impl CoarseDepGraph {
    /// Empty CDG.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a team node (for hand-sketched CDGs — "engineers can directly
    /// sketch the CDG and refine it over time", §5).
    ///
    /// # Panics
    /// Panics on duplicate team names.
    pub fn add_team(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(!self.name_index.contains_key(&name), "duplicate team {name}");
        let id = self.graph.add_node(Team { name: name.clone(), component_count: 0 });
        self.name_index.insert(name, id);
        id
    }

    /// Declare that team `src` depends on team `dst`. Duplicate edges are
    /// ignored (a CDG is a relation, not a multigraph).
    pub fn add_dependency(&mut self, src: NodeId, dst: NodeId) {
        if src != dst && self.graph.find_edge(src, dst).is_none() {
            self.graph.add_edge(src, dst, ());
        }
    }

    /// Team id by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Team payload.
    #[must_use]
    pub fn team(&self, id: NodeId) -> &Team {
        self.graph.node(id)
    }

    /// Number of teams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// True when the CDG has no teams.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// Team names in node order.
    #[must_use]
    pub fn team_names(&self) -> Vec<&str> {
        self.graph.nodes().map(|(_, t)| t.name.as_str()).collect()
    }

    /// Derive the CDG from a fine-grained graph: this is *coarsening* —
    /// mapping `Microservice → team dependency` (Table 2). Nodes merge by
    /// team; any cross-team fine edge induces the coarse edge.
    #[must_use]
    pub fn from_fine(fine: &FineDepGraph) -> Self {
        let contraction = fine.graph.contract(
            |_, c| c.team.clone(),
            |team, members| Team { name: team, component_count: members.len() },
            |_acc: Option<u32>, _| 1,
        );
        let mut cdg = CoarseDepGraph::new();
        for (_, t) in contraction.graph.nodes() {
            let id = cdg.graph.add_node(t.clone());
            cdg.name_index.insert(t.name.clone(), id);
        }
        for (_, e) in contraction.graph.edges() {
            cdg.add_dependency(e.src, e.dst);
        }
        cdg
    }

    /// [`CoarseDepGraph::from_fine`] wrapped in a `cdg/build` span: the
    /// fine/coarse node and edge counts land as exit fields, and the node
    /// reduction factor publishes as the `cdg_node_reduction` gauge.
    #[allow(clippy::cast_precision_loss)] // node counts stay far below 2^52
    pub fn from_fine_observed(fine: &FineDepGraph, obs: &smn_obs::Obs) -> Self {
        if !obs.is_enabled() {
            return Self::from_fine(fine);
        }
        let mut span = obs.span("cdg/build");
        let cdg = Self::from_fine(fine);
        span.field("fine_nodes", fine.graph.node_count());
        span.field("fine_edges", fine.graph.edge_count());
        span.field("teams", cdg.len());
        span.field("team_edges", cdg.graph.edge_count());
        if !cdg.is_empty() {
            obs.gauge("cdg_node_reduction", fine.graph.node_count() as f64 / cdg.len() as f64);
        }
        cdg
    }

    /// [`CoarseDepGraph::from_fine_observed`] with the span opened as a
    /// profiled phase: same trace/gauge output, plus the build's wall time
    /// lands in the perf trajectory's wall profile under `cdg/build`.
    #[allow(clippy::cast_precision_loss)] // node counts stay far below 2^52
    pub fn from_fine_profiled(fine: &FineDepGraph, obs: &smn_obs::Obs) -> Self {
        if !obs.is_enabled() {
            return Self::from_fine(fine);
        }
        let mut phase = obs.phase("cdg/build");
        let cdg = Self::from_fine(fine);
        phase.field("fine_nodes", fine.graph.node_count());
        phase.field("fine_edges", fine.graph.edge_count());
        phase.field("teams", cdg.len());
        phase.field("team_edges", cdg.graph.edge_count());
        if !cdg.is_empty() {
            obs.gauge("cdg_node_reduction", fine.graph.node_count() as f64 / cdg.len() as f64);
        }
        cdg
    }

    /// Apply one tick of fine-graph churn incrementally, re-deriving only
    /// the coarse cells whose fine members changed: a component of a new
    /// team appends that team node; a component of a known team bumps its
    /// `component_count`; a cross-team dependency inserts the coarse edge
    /// if absent. `fine` must be the fine graph *after*
    /// [`GraphDelta::apply_to_fine`] — it resolves dependency endpoints to
    /// teams.
    ///
    /// Because both the fine graph and the CDG are append-only and
    /// [`FineDepGraph::graph`] contraction orders teams by first
    /// appearance (over nodes) and coarse edges by first occurrence (over
    /// edges), the patched CDG is *byte-identical* under
    /// [`CoarseDepGraph::canonical_bytes`] to a batch
    /// [`CoarseDepGraph::from_fine`] rebuild — `from_fine` stays the
    /// reconciliation oracle, it is never consulted on the hot path.
    ///
    /// # Errors
    /// [`DeltaError::UnknownComponent`] when a dependency endpoint or
    /// added component is missing from `fine`, and
    /// [`DeltaError::UnknownTeam`] when an endpoint's team is missing
    /// here (the CDG was not derived from this fine graph's history).
    /// The CDG may be partially updated on error; reconcile to recover.
    pub fn apply_delta(
        &mut self,
        fine: &FineDepGraph,
        delta: &GraphDelta,
    ) -> Result<CdgDeltaStats, DeltaError> {
        let mut stats = CdgDeltaStats::default();
        for c in &delta.add_components {
            if fine.by_name(&c.name).is_none() {
                return Err(DeltaError::UnknownComponent(c.name.clone()));
            }
            if let Some(&id) = self.name_index.get(&c.team) {
                self.graph.node_mut(id).component_count += 1;
                stats.grown_teams += 1;
            } else {
                let id = self.graph.add_node(Team { name: c.team.clone(), component_count: 1 });
                self.name_index.insert(c.team.clone(), id);
                stats.new_teams += 1;
            }
        }
        for d in &delta.add_dependencies {
            let team_of = |name: &str| -> Result<&str, DeltaError> {
                fine.by_name(name)
                    .map(|id| fine.component(id).team.as_str())
                    .ok_or_else(|| DeltaError::UnknownComponent(name.to_string()))
            };
            let (src_team, dst_team) = (team_of(&d.src)?, team_of(&d.dst)?);
            let coarse_of = |team: &str| -> Result<NodeId, DeltaError> {
                self.name_index
                    .get(team)
                    .copied()
                    .ok_or_else(|| DeltaError::UnknownTeam(team.to_string()))
            };
            let (src, dst) = (coarse_of(src_team)?, coarse_of(dst_team)?);
            let before = self.graph.edge_count();
            self.add_dependency(src, dst);
            if self.graph.edge_count() > before {
                stats.new_edges += 1;
            }
        }
        Ok(stats)
    }

    /// The canonical byte encoding of the CDG: team count, then each team
    /// in node order (name length, name bytes, component count), then edge
    /// count, then each edge in insertion order (src, dst). Two CDGs with
    /// equal canonical bytes are structurally identical *including node
    /// and edge order* — this is what streaming reconciliation compares,
    /// so incremental maintenance cannot silently drift from the
    /// [`CoarseDepGraph::from_fine`] oracle even in ways that a
    /// set-semantics comparison would forgive.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // usize -> u64 cannot truncate on supported targets
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.graph.node_count() as u64).to_be_bytes());
        for (_, t) in self.graph.nodes() {
            out.extend_from_slice(&(t.name.len() as u64).to_be_bytes());
            out.extend_from_slice(t.name.as_bytes());
            out.extend_from_slice(&(t.component_count as u64).to_be_bytes());
        }
        out.extend_from_slice(&(self.graph.edge_count() as u64).to_be_bytes());
        for (_, e) in self.graph.edges() {
            out.extend_from_slice(&e.src.0.to_be_bytes());
            out.extend_from_slice(&e.dst.0.to_be_bytes());
        }
        out
    }

    /// Teams that transitively depend on `team` (including itself): the
    /// expected set of symptom-bearing teams if only `team` failed.
    #[must_use]
    pub fn dependents_of(&self, team: NodeId) -> HashSet<NodeId> {
        self.graph.reaching(team)
    }

    /// Fraction of implied component-level dependencies that are *false*:
    /// over all CDG edges `A → B` and component pairs `(a ∈ A, b ∈ B)`, the
    /// fraction with no fine-grained path `a ⇝ b`. Zero means the CDG is a
    /// lossless summary; higher values mean coarser routing (Table 2's
    /// "What's Lost" for CDGs).
    #[must_use]
    pub fn false_dependency_rate(&self, fine: &FineDepGraph) -> f64 {
        let mut implied = 0usize;
        let mut false_deps = 0usize;
        // Precompute per-component reachability sets lazily per source team.
        for (_, edge) in self.graph.edges() {
            let team_a = &self.team(edge.src).name;
            let team_b = &self.team(edge.dst).name;
            let comps_a = fine.team_components(team_a);
            let comps_b: HashSet<NodeId> = fine.team_components(team_b).into_iter().collect();
            for &a in &comps_a {
                let reach = fine.graph.reachable_from(a);
                for &b in &comps_b {
                    implied += 1;
                    if !reach.contains(&b) {
                        false_deps += 1;
                    }
                }
            }
        }
        if implied == 0 {
            0.0
        } else {
            false_deps as f64 / implied as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fine::{Component, DependencyKind, Layer};

    fn comp(name: &str, team: &str) -> Component {
        Component {
            name: name.into(),
            service: name.split('-').next().unwrap_or(name).into(),
            team: team.into(),
            layer: Layer::Application,
        }
    }

    /// Two app components; only one depends on the single storage component.
    fn fine_with_partial_dep() -> FineDepGraph {
        let mut g = FineDepGraph::new();
        let a1 = g.add_component(comp("app-1", "app"));
        let _a2 = g.add_component(comp("app-2", "app"));
        let s1 = g.add_component(comp("db-1", "storage"));
        g.add_dependency(a1, s1, DependencyKind::Call);
        g
    }

    #[test]
    fn hand_sketched_cdg() {
        let mut cdg = CoarseDepGraph::new();
        let app = cdg.add_team("app");
        let net = cdg.add_team("network");
        cdg.add_dependency(app, net);
        cdg.add_dependency(app, net); // duplicate ignored
        cdg.add_dependency(app, app); // self-loop ignored
        assert_eq!(cdg.len(), 2);
        assert_eq!(cdg.graph.edge_count(), 1);
        assert_eq!(cdg.by_name("network"), Some(net));
        assert_eq!(cdg.team_names(), vec!["app", "network"]);
    }

    #[test]
    #[should_panic(expected = "duplicate team")]
    fn duplicate_team_rejected() {
        let mut cdg = CoarseDepGraph::new();
        cdg.add_team("app");
        cdg.add_team("app");
    }

    #[test]
    fn derivation_from_fine_graph() {
        let fine = fine_with_partial_dep();
        let cdg = CoarseDepGraph::from_fine(&fine);
        assert_eq!(cdg.len(), 2);
        let app = cdg.by_name("app").unwrap();
        let storage = cdg.by_name("storage").unwrap();
        assert!(cdg.graph.find_edge(app, storage).is_some());
        assert!(cdg.graph.find_edge(storage, app).is_none());
        assert_eq!(cdg.team(app).component_count, 2);
        assert_eq!(cdg.team(storage).component_count, 1);
    }

    #[test]
    fn false_dependencies_measured() {
        let fine = fine_with_partial_dep();
        let cdg = CoarseDepGraph::from_fine(&fine);
        // Implied pairs: (app-1, db-1) true, (app-2, db-1) false -> 0.5.
        assert_eq!(cdg.false_dependency_rate(&fine), 0.5);
    }

    #[test]
    fn lossless_cdg_has_zero_false_rate() {
        let mut g = FineDepGraph::new();
        let a = g.add_component(comp("app-1", "app"));
        let s = g.add_component(comp("db-1", "storage"));
        g.add_dependency(a, s, DependencyKind::Call);
        let cdg = CoarseDepGraph::from_fine(&g);
        assert_eq!(cdg.false_dependency_rate(&g), 0.0);
    }

    #[test]
    fn apply_delta_matches_from_fine_byte_for_byte() {
        let mut fine = fine_with_partial_dep();
        let mut cdg = CoarseDepGraph::from_fine(&fine);
        let mut d = GraphDelta::new(0);
        d.push_component(comp("cache-1", "platform")); // new team
        d.push_component(comp("app-3", "app")); // grows an existing team
        d.push_dependency("app-2", "cache-1", DependencyKind::Call);
        d.push_dependency("cache-1", "db-1", DependencyKind::Call);
        d.push_dependency("app-1", "db-1", DependencyKind::Call); // coarse edge already exists
        d.apply_to_fine(&mut fine).unwrap();
        let stats = cdg.apply_delta(&fine, &d).unwrap();
        assert_eq!(stats, CdgDeltaStats { new_teams: 1, grown_teams: 1, new_edges: 2 });
        let oracle = CoarseDepGraph::from_fine(&fine);
        assert_eq!(cdg.canonical_bytes(), oracle.canonical_bytes());
        assert_eq!(cdg.team(cdg.by_name("app").unwrap()).component_count, 3);
    }

    #[test]
    fn canonical_bytes_are_order_sensitive() {
        let mut a = CoarseDepGraph::new();
        a.add_team("app");
        a.add_team("network");
        let mut b = CoarseDepGraph::new();
        b.add_team("network");
        b.add_team("app");
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        let c = a.clone();
        assert_eq!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn apply_delta_rejects_foreign_history() {
        let mut fine = fine_with_partial_dep();
        // A hand-sketched CDG that never saw the "storage" team.
        let mut cdg = CoarseDepGraph::new();
        cdg.add_team("app");
        let mut d = GraphDelta::new(0);
        d.push_dependency("app-2", "db-1", DependencyKind::Call);
        d.apply_to_fine(&mut fine).unwrap();
        let err = cdg.apply_delta(&fine, &d).unwrap_err();
        assert_eq!(err, crate::delta::DeltaError::UnknownTeam("storage".into()));
        // And a component the fine graph has never heard of.
        let mut d2 = GraphDelta::new(1);
        d2.push_dependency("ghost-1", "db-1", DependencyKind::Call);
        let err2 = cdg.apply_delta(&fine, &d2).unwrap_err();
        assert_eq!(err2, crate::delta::DeltaError::UnknownComponent("ghost-1".into()));
    }

    #[test]
    fn dependents_closure() {
        let mut cdg = CoarseDepGraph::new();
        let app = cdg.add_team("app");
        let platform = cdg.add_team("platform");
        let net = cdg.add_team("network");
        cdg.add_dependency(app, platform);
        cdg.add_dependency(platform, net);
        let deps = cdg.dependents_of(net);
        assert_eq!(deps.len(), 3); // net, platform, app
        assert!(deps.contains(&app));
        let deps_app = cdg.dependents_of(app);
        assert_eq!(deps_app.len(), 1);
    }
}
