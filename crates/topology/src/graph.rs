//! A small, self-contained directed-graph library used by every SMN layer.
//!
//! The graph is index-based: nodes and edges are identified by dense
//! [`NodeId`] / [`EdgeId`] handles, node and edge payloads are generic, and
//! adjacency is stored as per-node out/in edge lists. This mirrors the shape
//! of `petgraph`'s `Graph` but is implemented from scratch so the workspace
//! has no external graph dependency.
//!
//! Algorithms provided here are exactly the ones the paper's systems need:
//! shortest paths (Dijkstra), k-shortest loopless paths (Yen), reachability
//! closures (for syndrome propagation in coarse dependency graphs), weakly
//! connected components, and node contraction (the primitive behind
//! topology-based coarsening, §4 of the paper).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

/// Dense handle for a node in a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Dense handle for an edge in a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node's position in the graph's node table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge's position in the graph's edge table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeSlot<N> {
    payload: N,
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

/// An edge record: endpoints plus payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge<E> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// User payload (capacity, weight, …).
    pub payload: E,
}

/// A directed graph with generic node payload `N` and edge payload `E`.
///
/// Nodes and edges are never removed (SMN topologies only grow or get
/// *contracted* into new graphs), which keeps ids stable and the
/// implementation simple and robust — the smoltcp design values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiGraph<N, E> {
    nodes: Vec<NodeSlot<N>>,
    edges: Vec<Edge<E>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Create an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self { nodes: Vec::new(), edges: Vec::new() }
    }

    /// Create an empty graph with preallocated capacity.
    #[must_use]
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self { nodes: Vec::with_capacity(nodes), edges: Vec::with_capacity(edges) }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot { payload, out_edges: Vec::new(), in_edges: Vec::new() });
        id
    }

    /// Add a directed edge `src -> dst` and return its id.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "edge source {src} out of bounds");
        assert!(dst.index() < self.nodes.len(), "edge destination {dst} out of bounds");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, payload });
        self.nodes[src.index()].out_edges.push(id);
        self.nodes[dst.index()].in_edges.push(id);
        id
    }

    /// Payload of `node`.
    #[must_use]
    pub fn node(&self, node: NodeId) -> &N {
        &self.nodes[node.index()].payload
    }

    /// Mutable payload of `node`.
    pub fn node_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.nodes[node.index()].payload
    }

    /// The full edge record of `edge`.
    #[must_use]
    pub fn edge(&self, edge: EdgeId) -> &Edge<E> {
        &self.edges[edge.index()]
    }

    /// Mutable payload of `edge`.
    pub fn edge_mut(&mut self, edge: EdgeId) -> &mut E {
        &mut self.edges[edge.index()].payload
    }

    /// Endpoints `(src, dst)` of `edge`.
    #[must_use]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.index()];
        (e.src, e.dst)
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterate over `(NodeId, &N)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes.iter().enumerate().map(|(i, s)| (NodeId(i as u32), &s.payload))
    }

    /// Iterate over `(EdgeId, &Edge<E>)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge<E>)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Out-edges of `node`.
    #[must_use]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.nodes[node.index()].out_edges
    }

    /// In-edges of `node`.
    #[must_use]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.nodes[node.index()].in_edges
    }

    /// Successor nodes of `node` (one entry per out-edge; may repeat for
    /// parallel edges).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).iter().map(move |&e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes of `node`.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).iter().map(move |&e| self.edges[e.index()].src)
    }

    /// First edge from `src` to `dst`, if any.
    #[must_use]
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src).iter().copied().find(|&e| self.edges[e.index()].dst == dst)
    }

    /// Set of nodes reachable from `start` by directed edges (including
    /// `start` itself). Used for syndrome propagation: "which observers
    /// transitively depend on a failed component".
    #[must_use]
    pub fn reachable_from(&self, start: NodeId) -> HashSet<NodeId> {
        self.reachable(start, |g, n| Box::new(g.successors(n)))
    }

    /// Set of nodes that can reach `target` by directed edges (including
    /// `target`). If edges read "x depends on y", this is everything that
    /// (transitively) depends on `target`.
    #[must_use]
    pub fn reaching(&self, target: NodeId) -> HashSet<NodeId> {
        self.reachable(target, |g, n| Box::new(g.predecessors(n)))
    }

    fn reachable<'a>(
        &'a self,
        start: NodeId,
        next: impl Fn(&'a Self, NodeId) -> Box<dyn Iterator<Item = NodeId> + 'a>,
    ) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            for m in next(self, n) {
                if seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        seen
    }

    /// Breadth-first hop distances from `start` (unreachable nodes absent).
    #[must_use]
    pub fn bfs_hops(&self, start: NodeId) -> HashMap<NodeId, u32> {
        let mut dist = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(start, 0);
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            let d = dist[&n];
            for m in self.successors(n) {
                if let std::collections::hash_map::Entry::Vacant(v) = dist.entry(m) {
                    v.insert(d + 1);
                    queue.push_back(m);
                }
            }
        }
        dist
    }

    /// Weakly connected components, ignoring edge direction. Returns for
    /// each node the component index, plus the component count.
    #[must_use]
    pub fn weakly_connected_components(&self) -> (Vec<usize>, usize) {
        let n = self.node_count();
        let mut comp = vec![usize::MAX; n];
        let mut next_comp = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut queue = VecDeque::new();
            comp[start] = next_comp;
            queue.push_back(NodeId(start as u32));
            while let Some(u) = queue.pop_front() {
                let neighbors: Vec<NodeId> =
                    self.successors(u).chain(self.predecessors(u)).collect();
                for v in neighbors {
                    if comp[v.index()] == usize::MAX {
                        comp[v.index()] = next_comp;
                        queue.push_back(v);
                    }
                }
            }
            next_comp += 1;
        }
        (comp, next_comp)
    }

    /// Topological order of the nodes, or `None` if the graph has a cycle.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.node_count();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.nodes[i].in_edges.len()).collect();
        let mut queue: VecDeque<NodeId> =
            (0..n).filter(|&i| indegree[i] == 0).map(|i| NodeId(i as u32)).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for v in self.successors(u) {
                indegree[v.index()] -= 1;
                if indegree[v.index()] == 0 {
                    queue.push_back(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

/// A path through the graph: the node sequence and the edges taken.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Visited nodes, `nodes[0]` = source, `nodes.last()` = destination.
    pub nodes: Vec<NodeId>,
    /// Edges taken, `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
    /// Total weight under the cost function used to find the path.
    pub cost: f64,
}

impl Path {
    /// Number of hops (edges) in the path.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.edges.len()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite non-NaN by construction.
        other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<N, E> DiGraph<N, E> {
    /// Dijkstra shortest path from `src` to `dst` under a non-negative edge
    /// cost function. Edges for which `cost` returns `None` are unusable
    /// (e.g. failed links). Returns `None` when `dst` is unreachable.
    ///
    /// # Panics
    /// Panics (debug assertion) if `cost` returns a negative weight.
    pub fn shortest_path(
        &self,
        src: NodeId,
        dst: NodeId,
        mut cost: impl FnMut(EdgeId, &Edge<E>) -> Option<f64>,
    ) -> Option<Path> {
        let n = self.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(HeapEntry { cost: 0.0, node: src });
        while let Some(HeapEntry { cost: d, node: u }) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            if u == dst {
                break;
            }
            for &eid in self.out_edges(u) {
                let edge = &self.edges[eid.index()];
                let Some(w) = cost(eid, edge) else { continue };
                debug_assert!(w >= 0.0, "negative edge weight {w} on {eid}");
                let nd = d + w;
                if nd < dist[edge.dst.index()] {
                    dist[edge.dst.index()] = nd;
                    prev[edge.dst.index()] = Some((u, eid));
                    heap.push(HeapEntry { cost: nd, node: edge.dst });
                }
            }
        }
        if dist[dst.index()].is_infinite() {
            return None;
        }
        let mut nodes = vec![dst];
        let mut edges = Vec::new();
        let mut cur = dst;
        while let Some((p, e)) = prev[cur.index()] {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path { nodes, edges, cost: dist[dst.index()] })
    }

    /// Yen's algorithm: up to `k` loopless shortest paths from `src` to
    /// `dst`, sorted by cost. Used to build the path sets for path-based
    /// traffic engineering (§4).
    pub fn k_shortest_paths(
        &self,
        src: NodeId,
        dst: NodeId,
        k: usize,
        mut cost: impl FnMut(EdgeId, &Edge<E>) -> Option<f64>,
    ) -> Vec<Path> {
        let mut result: Vec<Path> = Vec::new();
        let Some(first) = self.shortest_path(src, dst, &mut cost) else {
            return result;
        };
        result.push(first);
        // Candidate paths found so far, best first.
        let mut candidates: Vec<Path> = Vec::new();
        while result.len() < k {
            let Some(last) = result.last().cloned() else { break };
            // For each node in the previous path except the terminal, branch.
            for i in 0..last.nodes.len() - 1 {
                let spur_node = last.nodes[i];
                let root_nodes = &last.nodes[..=i];
                let root_edges = &last.edges[..i];
                // Edges on an already-accepted path always have a usable
                // cost; a None here would only drop that edge's contribution.
                let root_cost: f64 =
                    root_edges.iter().filter_map(|&e| cost(e, &self.edges[e.index()])).sum();
                // Edges removed: any edge leaving the spur node that a
                // previously accepted path with the same root uses next.
                let mut banned_edges: HashSet<EdgeId> = HashSet::new();
                for p in result.iter().chain(candidates.iter()) {
                    if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                        if let Some(&e) = p.edges.get(i) {
                            banned_edges.insert(e);
                        }
                    }
                }
                // Nodes removed: the root path nodes except the spur node
                // (loopless requirement).
                let banned_nodes: HashSet<NodeId> = root_nodes[..i].iter().copied().collect();
                let spur = self.shortest_path(spur_node, dst, |eid, edge| {
                    if banned_edges.contains(&eid)
                        || banned_nodes.contains(&edge.src)
                        || banned_nodes.contains(&edge.dst)
                    {
                        None
                    } else {
                        cost(eid, edge)
                    }
                });
                if let Some(spur_path) = spur {
                    let mut nodes = root_nodes.to_vec();
                    nodes.extend_from_slice(&spur_path.nodes[1..]);
                    let mut edges = root_edges.to_vec();
                    edges.extend_from_slice(&spur_path.edges);
                    let total = Path { nodes, edges, cost: root_cost + spur_path.cost };
                    if !candidates.iter().any(|c| c.edges == total.edges)
                        && !result.iter().any(|c| c.edges == total.edges)
                    {
                        candidates.push(total);
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal));
            result.push(candidates.remove(0));
        }
        result
    }
}

/// Result of contracting a graph's nodes into groups ("supernodes").
///
/// This is the structural primitive behind topology-based coarsening (§4):
/// nodes mapped to the same group become one supernode; edges whose
/// endpoints land in different supernodes are merged per supernode pair by a
/// caller-supplied fold; intra-group edges disappear.
#[derive(Debug, Clone)]
pub struct Contraction<N2, E2> {
    /// The coarse graph.
    pub graph: DiGraph<N2, E2>,
    /// For each original node index, the coarse node it maps to.
    pub node_map: Vec<NodeId>,
    /// For each coarse node, the original nodes inside it.
    pub members: Vec<Vec<NodeId>>,
}

impl<N, E> DiGraph<N, E> {
    /// Contract nodes into supernodes.
    ///
    /// `group` assigns every original node a group key; nodes with equal
    /// keys merge. `make_node` builds a supernode payload from its members.
    /// `fold_edge` accumulates original edge payloads into the coarse edge
    /// payload for a given (coarse-src, coarse-dst) pair; it is called once
    /// per original cross-group edge, with `None` on first encounter.
    ///
    /// Self-loops produced by intra-group edges are dropped — acting on the
    /// coarse structure cannot see inside a supernode, which is exactly the
    /// information loss the paper's §4 discusses.
    pub fn contract<K, N2, E2>(
        &self,
        mut group: impl FnMut(NodeId, &N) -> K,
        mut make_node: impl FnMut(K, &[NodeId]) -> N2,
        mut fold_edge: impl FnMut(Option<E2>, &E) -> E2,
    ) -> Contraction<N2, E2>
    where
        K: Eq + std::hash::Hash + Clone,
    {
        // Group keys in first-seen order for determinism.
        let mut key_order: Vec<K> = Vec::new();
        let mut key_to_coarse: HashMap<K, usize> = HashMap::new();
        let mut node_map = Vec::with_capacity(self.node_count());
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for (id, payload) in self.nodes() {
            let k = group(id, payload);
            let idx = *key_to_coarse.entry(k.clone()).or_insert_with(|| {
                key_order.push(k.clone());
                members.push(Vec::new());
                key_order.len() - 1
            });
            members[idx].push(id);
            node_map.push(NodeId(idx as u32));
        }
        let mut graph = DiGraph::with_capacity(key_order.len(), self.edge_count());
        for (idx, k) in key_order.into_iter().enumerate() {
            graph.add_node(make_node(k, &members[idx]));
        }
        // Merge parallel coarse edges per (src, dst).
        let mut coarse_edges: HashMap<(NodeId, NodeId), E2> = HashMap::new();
        let mut pair_order: Vec<(NodeId, NodeId)> = Vec::new();
        for (_, e) in self.edges() {
            let cs = node_map[e.src.index()];
            let cd = node_map[e.dst.index()];
            if cs == cd {
                continue; // intra-supernode edge: invisible at coarse level
            }
            if let Some(acc) = coarse_edges.remove(&(cs, cd)) {
                coarse_edges.insert((cs, cd), fold_edge(Some(acc), &e.payload));
            } else {
                pair_order.push((cs, cd));
                coarse_edges.insert((cs, cd), fold_edge(None, &e.payload));
            }
        }
        for pair in pair_order {
            // Each pair is pushed exactly once when first inserted above.
            let Some(payload) = coarse_edges.remove(&pair) else { continue };
            graph.add_edge(pair.0, pair.1, payload);
        }
        Contraction { graph, node_map, members }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond with a shortcut: a->b->d (cost 2), a->c->d (cost 3), a->d (cost 10).
    fn diamond() -> (DiGraph<&'static str, f64>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(c, d, 2.0);
        g.add_edge(a, d, 10.0);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn add_and_query() {
        let (g, ids) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(*g.node(ids[0]), "a");
        assert_eq!(g.out_edges(ids[0]).len(), 3);
        assert_eq!(g.in_edges(ids[3]).len(), 3);
        assert!(g.find_edge(ids[0], ids[3]).is_some());
        assert!(g.find_edge(ids[3], ids[0]).is_none());
    }

    #[test]
    fn dijkstra_picks_cheapest() {
        let (g, ids) = diamond();
        let p = g.shortest_path(ids[0], ids[3], |_, e| Some(e.payload)).unwrap();
        assert_eq!(p.cost, 2.0);
        assert_eq!(p.nodes, vec![ids[0], ids[1], ids[3]]);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(g.shortest_path(a, b, |_, e| Some(e.payload)).is_none());
    }

    #[test]
    fn dijkstra_respects_unusable_edges() {
        let (g, ids) = diamond();
        // Ban the b route; next best is via c at cost 3.
        let p = g
            .shortest_path(
                ids[0],
                ids[3],
                |_, e| {
                    if e.dst == ids[1] {
                        None
                    } else {
                        Some(e.payload)
                    }
                },
            )
            .unwrap();
        assert_eq!(p.cost, 3.0);
    }

    #[test]
    fn yen_finds_three_distinct_paths() {
        let (g, ids) = diamond();
        let paths = g.k_shortest_paths(ids[0], ids[3], 5, |_, e| Some(e.payload));
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].cost, 2.0);
        assert_eq!(paths[1].cost, 3.0);
        assert_eq!(paths[2].cost, 10.0);
        // Loopless and distinct.
        for p in &paths {
            let set: HashSet<_> = p.nodes.iter().collect();
            assert_eq!(set.len(), p.nodes.len(), "path revisits a node");
        }
    }

    #[test]
    fn yen_k_smaller_than_available() {
        let (g, ids) = diamond();
        let paths = g.k_shortest_paths(ids[0], ids[3], 2, |_, e| Some(e.payload));
        assert_eq!(paths.len(), 2);
        assert!(paths[0].cost <= paths[1].cost);
    }

    #[test]
    fn reachability_closures() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        // web -> cache -> db ; probe -> web
        let web = g.add_node("web");
        let cache = g.add_node("cache");
        let db = g.add_node("db");
        let probe = g.add_node("probe");
        g.add_edge(web, cache, ());
        g.add_edge(cache, db, ());
        g.add_edge(probe, web, ());
        let dependents_of_db = g.reaching(db);
        assert_eq!(dependents_of_db.len(), 4); // db, cache, web, probe
        let deps_of_probe = g.reachable_from(probe);
        assert!(deps_of_probe.contains(&db));
        assert!(!g.reachable_from(db).contains(&web));
    }

    #[test]
    fn bfs_hop_distances() {
        let (g, ids) = diamond();
        let d = g.bfs_hops(ids[0]);
        assert_eq!(d[&ids[0]], 0);
        assert_eq!(d[&ids[1]], 1);
        assert_eq!(d[&ids[3]], 1); // direct a->d edge
    }

    #[test]
    fn components_ignore_direction() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(b, a, ());
        let (comp, n) = g.weakly_connected_components();
        assert_eq!(n, 2);
        assert_eq!(comp[a.index()], comp[b.index()]);
        assert_ne!(comp[a.index()], comp[c.index()]);
    }

    #[test]
    fn topological_order_of_dag() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(a, c, ());
        let order = g.topological_order().unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        assert!(pos[&a] < pos[&b] && pos[&b] < pos[&c]);
    }

    #[test]
    fn topological_order_rejects_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn contraction_merges_groups_and_folds_edges() {
        // 4 nodes in 2 groups; cross edges fold by sum, intra edges vanish.
        let mut g: DiGraph<u32, f64> = DiGraph::new();
        let n0 = g.add_node(0); // group 0
        let n1 = g.add_node(0); // group 0
        let n2 = g.add_node(1); // group 1
        let n3 = g.add_node(1); // group 1
        g.add_edge(n0, n1, 5.0); // intra — dropped
        g.add_edge(n0, n2, 1.0);
        g.add_edge(n1, n3, 2.0); // same coarse pair as above — folded
        g.add_edge(n2, n0, 7.0);
        let c = g.contract(
            |_, &grp| grp,
            |grp, members| (grp, members.len()),
            |acc: Option<f64>, w| acc.unwrap_or(0.0) + w,
        );
        assert_eq!(c.graph.node_count(), 2);
        assert_eq!(c.graph.edge_count(), 2);
        assert_eq!(c.members[0], vec![n0, n1]);
        assert_eq!(c.members[1], vec![n2, n3]);
        let fwd = c.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(c.graph.edge(fwd).payload, 3.0);
        let back = c.graph.find_edge(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(c.graph.edge(back).payload, 7.0);
        assert_eq!(c.node_map, vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)]);
    }

    #[test]
    fn contraction_to_single_supernode_has_no_edges() {
        let (g, _) = diamond();
        let c =
            g.contract(|_, _| 0u8, |_, m| m.len(), |acc: Option<f64>, w| acc.unwrap_or(0.0) + w);
        assert_eq!(c.graph.node_count(), 1);
        assert_eq!(c.graph.edge_count(), 0);
        assert_eq!(*c.graph.node(NodeId(0)), 4);
    }
}
