//! Deterministic topology generators.
//!
//! [`PlanetaryConfig`] builds a hyperscaler-style WAN in the shape the paper
//! assumes for its log-size estimates: "a planet-scale wide-area network of
//! roughly 300 datacenters" grouped into geographic regions (< 30 of which
//! carry high-volume traffic), spread over continents joined by subsea
//! cables. An L1 optical layer is generated underneath the L3 links so the
//! cross-layer experiments (wavelength flaps, fiber constraints) have a real
//! substrate to act on.
//!
//! All generation is deterministic given the seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::NodeId;
use crate::layer1::{Modulation, OpticalLayer};
use crate::layer3::{haversine_km, Continent, Datacenter, LinkAttrs, RegionId, Wan};
use crate::stack::LayerStack;

/// Configuration for the planetary WAN generator.
#[derive(Debug, Clone)]
pub struct PlanetaryConfig {
    /// RNG seed; equal seeds produce identical topologies.
    pub seed: u64,
    /// Continents to populate with (regions, dcs-per-region) pairs.
    /// Defaults model a ~300-DC network over 5 populated continents.
    pub continents: Vec<(Continent, usize, usize)>,
    /// Probability of a direct link between two DCs in the same region
    /// beyond the connectivity spanning ring.
    pub intra_region_extra_link_prob: f64,
    /// Capacity of intra-region links in Gbps.
    pub intra_region_capacity: f64,
    /// Capacity of inter-region (same continent) links in Gbps.
    pub inter_region_capacity: f64,
    /// Extra random inter-region chord links per continent (beyond the
    /// gateway ring), each between random member DCs of two regions. These
    /// give the fine topology the parallel-path diversity real WANs have —
    /// and that supernode-level routing cannot fully exploit.
    pub inter_region_chords_per_continent: usize,
    /// Capacity of inter-continent (subsea) links in Gbps.
    pub subsea_capacity: f64,
}

impl Default for PlanetaryConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            // 5 populated continents, 24 regions, 300 DCs total:
            // na: 8 regions x 16 = 128, eu: 6 x 14 = 84, ap: 6 x 10 = 60,
            // sa: 2 x 8 = 16, oc: 2 x 6 = 12.
            continents: vec![
                (Continent::NorthAmerica, 8, 16),
                (Continent::Europe, 6, 14),
                (Continent::Asia, 6, 10),
                (Continent::SouthAmerica, 2, 8),
                (Continent::Oceania, 2, 6),
            ],
            intra_region_extra_link_prob: 0.25,
            intra_region_capacity: 400.0,
            inter_region_capacity: 800.0,
            inter_region_chords_per_continent: 10,
            subsea_capacity: 600.0,
        }
    }
}

impl PlanetaryConfig {
    /// A smaller topology (good for tests and fast benches): 3 continents,
    /// 6 regions, 24 DCs.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            continents: vec![
                (Continent::NorthAmerica, 3, 5),
                (Continent::Europe, 2, 4),
                (Continent::Asia, 1, 1),
            ],
            ..Self::default()
        }
    }

    /// The ~1000-DC scale-sweep point: 6 populated continents, 48 regions.
    /// Region sizes grow with the network (17–25 DCs) the way hyperscaler
    /// build-outs densify existing metros rather than only adding new ones.
    #[must_use]
    pub fn scale_1000(seed: u64) -> Self {
        Self {
            seed,
            // na: 12 x 25 = 300, eu: 10 x 21 = 210, ap: 10 x 19 = 190,
            // sa: 6 x 17 = 102, af: 6 x 17 = 102, oc: 4 x 24 = 96.
            continents: vec![
                (Continent::NorthAmerica, 12, 25),
                (Continent::Europe, 10, 21),
                (Continent::Asia, 10, 19),
                (Continent::SouthAmerica, 6, 17),
                (Continent::Africa, 6, 17),
                (Continent::Oceania, 4, 24),
            ],
            ..Self::default()
        }
    }

    /// The ~3000-DC scale-sweep point: 6 populated continents, 89 regions.
    #[must_use]
    pub fn scale_3000(seed: u64) -> Self {
        Self {
            seed,
            // na: 24 x 40 = 960, eu: 20 x 35 = 700, ap: 20 x 35 = 700,
            // sa: 10 x 30 = 300, af: 8 x 25 = 200, oc: 7 x 20 = 140.
            continents: vec![
                (Continent::NorthAmerica, 24, 40),
                (Continent::Europe, 20, 35),
                (Continent::Asia, 20, 35),
                (Continent::SouthAmerica, 10, 30),
                (Continent::Africa, 8, 25),
                (Continent::Oceania, 7, 20),
            ],
            ..Self::default()
        }
    }

    /// Total datacenter count this config will generate.
    #[must_use]
    pub fn dc_count(&self) -> usize {
        self.continents.iter().map(|&(_, r, d)| r * d).sum()
    }
}

/// A generated planetary network: the L3 WAN plus its optical underlay.
#[derive(Debug, Clone)]
pub struct Planetary {
    /// Logical topology.
    pub wan: Wan,
    /// Optical underlay; its L1 → L3 map references [`crate::graph::EdgeId`]s
    /// of `wan.graph`.
    pub optical: OpticalLayer,
}

impl Planetary {
    /// Register both network layers in a unified [`LayerStack`] (the L7
    /// service layer starts empty; applications bind it via
    /// [`LayerStack::with_services`]).
    #[must_use]
    pub fn into_stack(self) -> LayerStack {
        LayerStack::new(self.optical, self.wan)
    }
}

/// Rough anchor coordinates per continent (lat, lon).
fn continent_anchor(c: Continent) -> (f64, f64) {
    match c {
        Continent::NorthAmerica => (39.0, -98.0),
        Continent::SouthAmerica => (-15.0, -58.0),
        Continent::Europe => (50.0, 10.0),
        Continent::Africa => (2.0, 21.0),
        Continent::Asia => (25.0, 105.0),
        Continent::Oceania => (-27.0, 140.0),
        Continent::Antarctica => (-80.0, 0.0),
    }
}

/// Generate a planetary WAN + optical underlay from `config`.
///
/// Structure:
/// * each region is a ring of DCs plus random chords
///   (`intra_region_extra_link_prob`);
/// * regions within a continent form a ring through per-region gateway DCs;
/// * continents are joined in a ring through per-continent gateway DCs with
///   subsea links.
///
/// Every L3 link gets one or more wavelengths in the optical layer sized to
/// its capacity, and subsea spans are created with zero spare slots half the
/// time (fiber constraints in the ground).
#[must_use]
pub fn generate_planetary(config: &PlanetaryConfig) -> Planetary {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut wan = Wan::new();
    let mut optical = OpticalLayer::new();

    let mut region_counter: u16 = 0;
    // Per continent: list of (region gateway nodes).
    let mut continent_gateways: Vec<(Continent, Vec<NodeId>)> = Vec::new();

    for &(continent, regions, dcs_per_region) in &config.continents {
        let (clat, clon) = continent_anchor(continent);
        let mut region_gateways = Vec::new();
        let mut region_members: Vec<Vec<NodeId>> = Vec::new();
        for r in 0..regions {
            let rid = RegionId(region_counter);
            region_counter += 1;
            // Region center jittered around the continent anchor.
            let rlat = clat + rng.random_range(-12.0..12.0);
            let rlon = clon + rng.random_range(-25.0..25.0);
            let mut nodes = Vec::with_capacity(dcs_per_region);
            for d in 0..dcs_per_region {
                let name = format!("{}-r{}-dc{}", continent.code(), r, d);
                let lat = (rlat + rng.random_range(-2.0..2.0)).clamp(-85.0, 85.0);
                let lon = rlon + rng.random_range(-3.0..3.0);
                nodes.push(wan.add_datacenter(Datacenter {
                    name,
                    continent,
                    region: rid,
                    lat,
                    lon,
                }));
            }
            // Ring for connectivity.
            for i in 0..nodes.len() {
                let a = nodes[i];
                let b = nodes[(i + 1) % nodes.len()];
                if a == b {
                    continue;
                }
                add_linked(
                    &mut wan,
                    &mut optical,
                    &mut rng,
                    a,
                    b,
                    config.intra_region_capacity,
                    false,
                );
            }
            // Extra chords.
            for i in 0..nodes.len() {
                for j in (i + 2)..nodes.len() {
                    if (i == 0) && (j == nodes.len() - 1) {
                        continue; // ring edge already present
                    }
                    if rng.random::<f64>() < config.intra_region_extra_link_prob {
                        add_linked(
                            &mut wan,
                            &mut optical,
                            &mut rng,
                            nodes[i],
                            nodes[j],
                            config.intra_region_capacity,
                            false,
                        );
                    }
                }
            }
            region_gateways.push(nodes[0]);
            region_members.push(nodes);
        }
        // Ring over region gateways within the continent.
        for i in 0..region_gateways.len() {
            let a = region_gateways[i];
            let b = region_gateways[(i + 1) % region_gateways.len()];
            if a == b {
                continue;
            }
            add_linked(&mut wan, &mut optical, &mut rng, a, b, config.inter_region_capacity, false);
        }
        // Extra chords between random region pairs through random member
        // DCs: parallel inter-region paths.
        if region_members.len() >= 2 {
            for _ in 0..config.inter_region_chords_per_continent {
                let r1 = rng.random_range(0..region_members.len());
                let r2 = rng.random_range(0..region_members.len());
                if r1 == r2 {
                    continue;
                }
                let a = region_members[r1][rng.random_range(0..region_members[r1].len())];
                let b = region_members[r2][rng.random_range(0..region_members[r2].len())];
                add_linked(
                    &mut wan,
                    &mut optical,
                    &mut rng,
                    a,
                    b,
                    config.inter_region_capacity,
                    false,
                );
            }
        }
        continent_gateways.push((continent, region_gateways));
    }

    // Ring over continents (subsea).
    for i in 0..continent_gateways.len() {
        let a = continent_gateways[i].1[0];
        let b = continent_gateways[(i + 1) % continent_gateways.len()].1[0];
        if a == b {
            continue;
        }
        add_linked(&mut wan, &mut optical, &mut rng, a, b, config.subsea_capacity, true);
    }

    Planetary { wan, optical }
}

/// Add a bidirectional L3 link plus its optical underlay.
fn add_linked(
    wan: &mut Wan,
    optical: &mut OpticalLayer,
    rng: &mut StdRng,
    a: NodeId,
    b: NodeId,
    capacity: f64,
    subsea: bool,
) {
    // Avoid duplicate links between the same pair.
    if wan.graph.find_edge(a, b).is_some() {
        return;
    }
    let dist = haversine_km(wan.dc(a).lat, wan.dc(a).lon, wan.dc(b).lat, wan.dc(b).lon).max(50.0);
    let (fwd, rev) = wan.add_bidi_link(a, b, LinkAttrs::new(capacity, dist, subsea));

    // Optical underlay: split the path into spans of <= 800 km.
    let nspans = (dist / 800.0).ceil().max(1.0) as usize;
    let span_len = dist / nspans as f64;
    let spare = if subsea && rng.random::<f64>() < 0.5 {
        0 // fiber constraints in the ground
    } else {
        rng.random_range(1..4)
    };
    let spans: Vec<_> = (0..nspans)
        .map(|i| {
            optical.add_span(
                format!("{}-{}-seg{}", wan.dc(a).name, wan.dc(b).name, i),
                span_len,
                subsea,
                spare,
            )
        })
        .collect();
    // Choose the most aggressive modulation still within reach; paths longer
    // than QPSK reach are regenerated: split into segments, each lit as its
    // own wavelength chain carrying the same L3 link.
    let modulation = [Modulation::Qam16, Modulation::Qam8, Modulation::Qpsk]
        .into_iter()
        .find(|m| dist <= m.max_reach_km())
        .unwrap_or(Modulation::Qpsk);
    let n_wavelengths = (capacity / modulation.rate_gbps()).ceil().max(1.0) as usize;
    let spans_per_segment =
        ((modulation.max_reach_km() / span_len).floor() as usize).clamp(1, spans.len());
    for _ in 0..n_wavelengths {
        for segment in spans.chunks(spans_per_segment) {
            optical.light_wavelength(segment.to_vec(), modulation, vec![fwd, rev]);
        }
    }
}

/// A tiny fixed WAN (5 DCs, 2 regions + 1 EU DC) used throughout unit tests
/// and doc examples. Deterministic, no RNG.
#[must_use]
pub fn reference_wan() -> Wan {
    let mut w = Wan::new();
    let dc = |name: &str, c: Continent, r: u16, lat: f64, lon: f64| Datacenter {
        name: name.into(),
        continent: c,
        region: RegionId(r),
        lat,
        lon,
    };
    let e1 = w.add_datacenter(dc("us-e1", Continent::NorthAmerica, 0, 39.0, -77.5));
    let e2 = w.add_datacenter(dc("us-e2", Continent::NorthAmerica, 0, 40.7, -74.0));
    let w1 = w.add_datacenter(dc("us-w1", Continent::NorthAmerica, 1, 45.6, -121.2));
    let w2 = w.add_datacenter(dc("us-w2", Continent::NorthAmerica, 1, 37.4, -122.1));
    let eu = w.add_datacenter(dc("eu-w1", Continent::Europe, 2, 53.3, -6.3));
    w.add_bidi_link(e1, e2, LinkAttrs::new(400.0, 330.0, false));
    w.add_bidi_link(w1, w2, LinkAttrs::new(400.0, 920.0, false));
    w.add_bidi_link(e1, w1, LinkAttrs::new(800.0, 3700.0, false));
    w.add_bidi_link(e2, w2, LinkAttrs::new(800.0, 4100.0, false));
    w.add_bidi_link(e1, eu, LinkAttrs::new(600.0, 5500.0, true));
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_produces_roughly_300_dcs() {
        let cfg = PlanetaryConfig::default();
        assert_eq!(cfg.dc_count(), 300);
        let p = generate_planetary(&cfg);
        assert_eq!(p.wan.dc_count(), 300);
        assert!(p.wan.link_count() > 600, "links: {}", p.wan.link_count());
    }

    #[test]
    fn scale_sweep_configs_hit_their_dc_targets() {
        assert_eq!(PlanetaryConfig::scale_1000(7).dc_count(), 1000);
        assert_eq!(PlanetaryConfig::scale_3000(7).dc_count(), 3000);
        // The sweep keeps the paper's "few high-traffic regions" shape:
        // region count grows sublinearly with DC count.
        assert_eq!(
            PlanetaryConfig::scale_1000(7).continents.iter().map(|c| c.1).sum::<usize>(),
            48
        );
        assert_eq!(
            PlanetaryConfig::scale_3000(7).continents.iter().map(|c| c.1).sum::<usize>(),
            89
        );
        let p = generate_planetary(&PlanetaryConfig::scale_1000(7));
        assert_eq!(p.wan.dc_count(), 1000);
        let (_, n) = p.wan.graph.weakly_connected_components();
        assert_eq!(n, 1, "scale-1000 WAN must be connected");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PlanetaryConfig::small(42);
        let a = generate_planetary(&cfg);
        let b = generate_planetary(&cfg);
        assert_eq!(a.wan.dc_count(), b.wan.dc_count());
        assert_eq!(a.wan.link_count(), b.wan.link_count());
        for (ea, eb) in a.wan.graph.edges().zip(b.wan.graph.edges()) {
            assert_eq!(ea.1.src, eb.1.src);
            assert_eq!(ea.1.dst, eb.1.dst);
            assert_eq!(ea.1.payload.capacity_gbps, eb.1.payload.capacity_gbps);
        }
        assert_eq!(a.optical.wavelengths().len(), b.optical.wavelengths().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_planetary(&PlanetaryConfig::small(1));
        let b = generate_planetary(&PlanetaryConfig::small(2));
        // Same node count (structure fixed) but different link sets.
        assert_eq!(a.wan.dc_count(), b.wan.dc_count());
        assert_ne!(a.wan.link_count(), b.wan.link_count());
    }

    #[test]
    fn generated_wan_is_connected() {
        let p = generate_planetary(&PlanetaryConfig::small(3));
        let (_, n) = p.wan.graph.weakly_connected_components();
        assert_eq!(n, 1, "planetary WAN must be connected");
    }

    #[test]
    fn every_l3_link_has_optical_backing() {
        let p = generate_planetary(&PlanetaryConfig::small(4));
        for eid in p.wan.graph.edge_ids() {
            let wls = p.optical.wavelengths_for_link(eid);
            assert!(!wls.is_empty(), "link {eid} has no wavelength");
            let cap: f64 = wls.iter().map(|&w| p.optical.wavelength(w).capacity_gbps()).sum();
            assert!(
                cap + 1e-6 >= p.wan.graph.edge(eid).payload.capacity_gbps,
                "optical capacity {cap} under L3 capacity"
            );
        }
    }

    #[test]
    fn wavelengths_within_reach() {
        let p = generate_planetary(&PlanetaryConfig::small(5));
        for w in p.optical.wavelengths() {
            assert!(
                w.within_reach(),
                "generator picked {:?} for a {} km path",
                w.modulation,
                w.path_km
            );
        }
    }

    #[test]
    fn region_contraction_shrinks_order_of_magnitude() {
        let p = generate_planetary(&PlanetaryConfig::default());
        let c = p.wan.contract_by_region();
        // 300 DCs -> 24 regions: >10x node reduction (paper's estimate).
        assert!(c.graph.node_count() * 10 <= p.wan.dc_count());
        assert!(c.graph.node_count() < 30);
    }

    #[test]
    fn reference_wan_shape() {
        let w = reference_wan();
        assert_eq!(w.dc_count(), 5);
        assert_eq!(w.link_count(), 10);
        let (_, n) = w.graph.weakly_connected_components();
        assert_eq!(n, 1);
    }
}
