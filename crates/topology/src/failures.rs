//! Failure-event simulation over the optical layer and the unified stack.
//!
//! War story 2 and the SMN reliability loop need a realistic stream of
//! link flaps whose *cause* lives at L1: each wavelength flaps per
//! [`crate::layer1::Wavelength::flap_probability`] (driven by modulation
//! aggressiveness and reach stress), and a wavelength flap takes down every
//! L3 link it carries for that day. The simulation is a pure function of
//! the seed, so reliability experiments are reproducible.
//!
//! [`simulate_flaps`] walks the typed L1 → L3 map; [`simulate_stack_flaps`]
//! walks the *whole* registered [`LayerStack`] downward, so a flap carries
//! its L7 blast set too. Both use the same per-wavelength gate hash, so
//! their L3 outcome sets are identical by construction (locked in by a
//! workspace proptest).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::graph::EdgeId;
use crate::layer1::{OpticalLayer, WavelengthId};
use crate::stack::{LayerStack, StackFault, StackImpact};

/// One simulated flap: a wavelength failed (and recovered) on a given day,
/// dropping its carried L3 links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlapEvent {
    /// Day index of the flap.
    pub day: u64,
    /// The wavelength that flapped.
    pub wavelength: WavelengthId,
    /// L3 links that dropped.
    pub links: Vec<EdgeId>,
}

/// One simulated flap walked down the whole stack: the day plus the typed
/// per-layer blast set (wavelength, links, components).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackFlapEvent {
    /// Day index of the flap.
    pub day: u64,
    /// The cross-layer impact of the flap (origin L1).
    pub impact: StackImpact,
}

/// Simulate `days` days of wavelength flaps over `optical`. Deterministic
/// in `seed`.
#[must_use]
pub fn simulate_flaps(optical: &OpticalLayer, days: u64, seed: u64) -> Vec<FlapEvent> {
    let mut events = Vec::new();
    for day in 0..days {
        for w in optical.wavelengths() {
            if flap_gate(w.flap_probability(), seed, day, w.id) {
                events.push(FlapEvent {
                    day,
                    wavelength: w.id,
                    links: optical.links_on_wavelength(w.id).to_vec(),
                });
            }
        }
    }
    events
}

/// Simulate `days` days of wavelength flaps and walk each one down the
/// registered [`LayerStack`] (L1 flap → L3 links down → L7 components
/// symptomatic). Uses the same per-wavelength gate as [`simulate_flaps`],
/// so the flap schedule and L3 outcome sets match the legacy path exactly.
#[must_use]
pub fn simulate_stack_flaps(stack: &LayerStack, days: u64, seed: u64) -> Vec<StackFlapEvent> {
    let mut events = Vec::new();
    for day in 0..days {
        for w in stack.optical().wavelengths() {
            if flap_gate(w.flap_probability(), seed, day, w.id) {
                events.push(StackFlapEvent {
                    day,
                    impact: stack.propagate_down(StackFault::WavelengthFlap(w.id)),
                });
            }
        }
    }
    events
}

/// The shared flap decision: deterministic in `(seed, day, wavelength)`.
fn flap_gate(p: f64, seed: u64, day: u64, id: WavelengthId) -> bool {
    uniform01(hash3(seed, day, u64::from(id.0))) < p
}

/// Aggregate flap events into per-L3-link flap counts — the input shape
/// of the SMN reliability loop. `BTreeMap` so iteration order is the
/// deterministic link order.
#[must_use]
pub fn flap_counts(events: &[FlapEvent]) -> BTreeMap<EdgeId, u32> {
    let mut counts = BTreeMap::new();
    for e in events {
        for &l in &e.links {
            *counts.entry(l).or_insert(0) += 1;
        }
    }
    counts
}

/// Flap counts per wavelength (for attribution analysis).
#[must_use]
pub fn flaps_per_wavelength(events: &[FlapEvent]) -> HashMap<WavelengthId, u32> {
    let mut counts = HashMap::new();
    for e in events {
        *counts.entry(e.wavelength).or_insert(0) += 1;
    }
    counts
}

// Local SplitMix-based hashing (kept here so smn-topology stays
// dependency-free of smn-telemetry).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(a) ^ b) ^ c)
}

fn uniform01(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer1::Modulation;
    use crate::layer3::{Continent, Datacenter, LinkAttrs, RegionId, Wan};
    use crate::stack::{ComponentId, CrossLayerMap, LayerId, ServiceLayer};

    fn two_wavelength_layer() -> OpticalLayer {
        let mut l1 = OpticalLayer::new();
        // Stressed 16QAM near reach; relaxed QPSK.
        let hot = l1.add_span("hot", 760.0, false, 1);
        let cool = l1.add_span("cool", 760.0, false, 1);
        l1.light_wavelength(vec![hot], Modulation::Qam16, vec![EdgeId(0), EdgeId(1)]);
        l1.light_wavelength(vec![cool], Modulation::Qpsk, vec![EdgeId(2)]);
        l1
    }

    fn stack_over(optical: OpticalLayer) -> LayerStack {
        let mut wan = Wan::new();
        let names = ["a", "b", "c", "d"];
        let ids: Vec<_> = names
            .iter()
            .map(|n| {
                wan.add_datacenter(Datacenter {
                    name: (*n).to_string(),
                    continent: Continent::NorthAmerica,
                    region: RegionId(0),
                    lat: 0.0,
                    lon: 0.0,
                })
            })
            .collect();
        wan.add_link(ids[0], ids[1], LinkAttrs::new(100.0, 10.0, false));
        wan.add_link(ids[1], ids[2], LinkAttrs::new(100.0, 10.0, false));
        wan.add_link(ids[2], ids[3], LinkAttrs::new(100.0, 10.0, false));
        let mut l3_l7 = CrossLayerMap::new();
        l3_l7.push(vec![ComponentId(0)]);
        l3_l7.push(vec![ComponentId(0)]);
        l3_l7.push(vec![ComponentId(1)]);
        let services = ServiceLayer::from_names(vec!["wan-1".into(), "edge-1".into()]);
        LayerStack::new(optical, wan).with_services(services, l3_l7)
    }

    #[test]
    fn simulation_is_deterministic() {
        let l1 = two_wavelength_layer();
        assert_eq!(simulate_flaps(&l1, 100, 5), simulate_flaps(&l1, 100, 5));
        assert_ne!(simulate_flaps(&l1, 500, 5).len(), simulate_flaps(&l1, 500, 6).len());
    }

    #[test]
    fn stressed_wavelength_flaps_much_more() {
        let l1 = two_wavelength_layer();
        let events = simulate_flaps(&l1, 2000, 1);
        let per_w = flaps_per_wavelength(&events);
        let hot = per_w.get(&WavelengthId(0)).copied().unwrap_or(0);
        let cool = per_w.get(&WavelengthId(1)).copied().unwrap_or(0);
        assert!(hot > 10 * cool.max(1), "hot {hot} vs cool {cool}");
    }

    #[test]
    fn link_counts_aggregate_carried_links() {
        let l1 = two_wavelength_layer();
        let events = simulate_flaps(&l1, 2000, 2);
        let counts = flap_counts(&events);
        // Links 0 and 1 ride the same wavelength: identical counts.
        assert_eq!(counts.get(&EdgeId(0)), counts.get(&EdgeId(1)));
        let hot_flaps = counts.get(&EdgeId(0)).copied().unwrap_or(0);
        assert!(hot_flaps > 0);
    }

    #[test]
    fn retune_reduces_flap_rate() {
        let mut l1 = two_wavelength_layer();
        let before = simulate_flaps(&l1, 1000, 3).len();
        l1.retune(WavelengthId(0), Modulation::Qam8);
        let after = simulate_flaps(&l1, 1000, 3).len();
        assert!(after * 3 < before, "retune should collapse flaps: {before} -> {after}");
    }

    #[test]
    fn stack_flaps_match_legacy_schedule_and_reach_l7() {
        let stack = stack_over(two_wavelength_layer());
        let legacy = simulate_flaps(stack.optical(), 500, 7);
        let generic = simulate_stack_flaps(&stack, 500, 7);
        assert_eq!(legacy.len(), generic.len());
        for (l, g) in legacy.iter().zip(&generic) {
            assert_eq!(l.day, g.day);
            assert_eq!(g.impact.wavelengths, vec![l.wavelength]);
            let mut sorted = l.links.clone();
            sorted.sort_unstable();
            assert_eq!(g.impact.links, sorted);
            assert_eq!(g.impact.origin, Some(LayerId::L1));
            assert!(!g.impact.components.is_empty(), "flap must surface an L7 symptom");
        }
    }
}
