//! Failure-event simulation over the optical layer.
//!
//! War story 2 and the SMN reliability loop need a realistic stream of
//! link flaps whose *cause* lives at L1: each wavelength flaps per
//! [`crate::layer1::Wavelength::flap_probability`] (driven by modulation
//! aggressiveness and reach stress), and a wavelength flap takes down every
//! L3 link it carries for that day. The simulation is a pure function of
//! the seed, so reliability experiments are reproducible.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::layer1::{OpticalLayer, WavelengthId};

/// One simulated flap: a wavelength failed (and recovered) on a given day,
/// dropping its carried L3 links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlapEvent {
    /// Day index of the flap.
    pub day: u64,
    /// The wavelength that flapped.
    pub wavelength: WavelengthId,
    /// L3 link indices that dropped.
    pub links: Vec<usize>,
}

/// Simulate `days` days of wavelength flaps over `optical`. Deterministic
/// in `seed`.
pub fn simulate_flaps(optical: &OpticalLayer, days: u64, seed: u64) -> Vec<FlapEvent> {
    let mut events = Vec::new();
    for day in 0..days {
        for w in optical.wavelengths() {
            let p = w.flap_probability();
            let h = hash3(seed, day, w.id.0 as u64);
            if uniform01(h) < p {
                events.push(FlapEvent {
                    day,
                    wavelength: w.id,
                    links: optical.links_on_wavelength(w.id).to_vec(),
                });
            }
        }
    }
    events
}

/// Aggregate flap events into per-L3-link flap counts — the input shape
/// of the SMN reliability loop.
pub fn flap_counts(events: &[FlapEvent]) -> HashMap<usize, u32> {
    let mut counts = HashMap::new();
    for e in events {
        for &l in &e.links {
            *counts.entry(l).or_insert(0) += 1;
        }
    }
    counts
}

/// Flap counts per wavelength (for attribution analysis).
pub fn flaps_per_wavelength(events: &[FlapEvent]) -> HashMap<WavelengthId, u32> {
    let mut counts = HashMap::new();
    for e in events {
        *counts.entry(e.wavelength).or_insert(0) += 1;
    }
    counts
}

// Local SplitMix-based hashing (kept here so smn-topology stays
// dependency-free of smn-telemetry).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(a) ^ b) ^ c)
}

fn uniform01(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer1::Modulation;

    fn two_wavelength_layer() -> OpticalLayer {
        let mut l1 = OpticalLayer::new();
        // Stressed 16QAM near reach; relaxed QPSK.
        let hot = l1.add_span("hot", 760.0, false, 1);
        let cool = l1.add_span("cool", 760.0, false, 1);
        l1.light_wavelength(vec![hot], Modulation::Qam16, vec![0, 1]);
        l1.light_wavelength(vec![cool], Modulation::Qpsk, vec![2]);
        l1
    }

    #[test]
    fn simulation_is_deterministic() {
        let l1 = two_wavelength_layer();
        assert_eq!(simulate_flaps(&l1, 100, 5), simulate_flaps(&l1, 100, 5));
        assert_ne!(simulate_flaps(&l1, 500, 5).len(), simulate_flaps(&l1, 500, 6).len());
    }

    #[test]
    fn stressed_wavelength_flaps_much_more() {
        let l1 = two_wavelength_layer();
        let events = simulate_flaps(&l1, 2000, 1);
        let per_w = flaps_per_wavelength(&events);
        let hot = per_w.get(&WavelengthId(0)).copied().unwrap_or(0);
        let cool = per_w.get(&WavelengthId(1)).copied().unwrap_or(0);
        assert!(hot > 10 * cool.max(1), "hot {hot} vs cool {cool}");
    }

    #[test]
    fn link_counts_aggregate_carried_links() {
        let l1 = two_wavelength_layer();
        let events = simulate_flaps(&l1, 2000, 2);
        let counts = flap_counts(&events);
        // Links 0 and 1 ride the same wavelength: identical counts.
        assert_eq!(counts.get(&0), counts.get(&1));
        let hot_flaps = counts.get(&0).copied().unwrap_or(0);
        assert!(hot_flaps > 0);
    }

    #[test]
    fn retune_reduces_flap_rate() {
        let mut l1 = two_wavelength_layer();
        let before = simulate_flaps(&l1, 1000, 3).len();
        l1.retune(WavelengthId(0), Modulation::Qam8);
        let after = simulate_flaps(&l1, 1000, 3).len();
        assert!(after * 3 < before, "retune should collapse flaps: {before} -> {after}");
    }
}
