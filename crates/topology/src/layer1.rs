//! Layer-1 (optical) substrate: fiber spans, wavelengths, and modulation.
//!
//! The paper's second war story ("Wavelength Modulation and Resilience")
//! hinges on the L1 → L3 mapping: each optical wavelength carries one or
//! more logical inter-datacenter links, and pushing a wavelength to a more
//! aggressive modulation format raises its data rate *and* its failure
//! susceptibility (RADWAN, SIGCOMM '18). The SMN's cross-layer dependency
//! graph makes this mapping explicit so routing flaps can be traced to
//! optical configuration in minutes rather than weeks.

use serde::{Deserialize, Serialize};

use crate::graph::EdgeId;
use crate::stack::CrossLayerMap;

/// Identifier for a fiber span (a physical segment of fiber between two
/// amplifier huts or landing stations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiberSpanId(pub u32);

/// Identifier for a wavelength (an optical channel riding one or more
/// fiber spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WavelengthId(pub u32);

/// Modulation format of a wavelength. Higher-order formats carry more bits
/// per symbol but tolerate less noise, so they fail more often and reach
/// shorter distances — the rate/reach/reliability tradeoff RADWAN measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// Quadrature phase-shift keying: 100 Gbps, longest reach, most robust.
    Qpsk,
    /// 8-ary QAM: 150 Gbps, medium reach.
    Qam8,
    /// 16-ary QAM: 200 Gbps, shortest reach, most failure-prone.
    Qam16,
}

impl Modulation {
    /// Data rate carried by a wavelength at this modulation, in Gbps.
    #[must_use]
    pub fn rate_gbps(self) -> f64 {
        match self {
            Modulation::Qpsk => 100.0,
            Modulation::Qam8 => 150.0,
            Modulation::Qam16 => 200.0,
        }
    }

    /// Maximum reach in kilometers before the optical signal-to-noise ratio
    /// is insufficient (coarse industry figures; only relative order
    /// matters for the simulations).
    #[must_use]
    pub fn max_reach_km(self) -> f64 {
        match self {
            Modulation::Qpsk => 5_000.0,
            Modulation::Qam8 => 2_500.0,
            Modulation::Qam16 => 800.0,
        }
    }

    /// Baseline failure probability per simulated day for a wavelength at
    /// this modulation operating *within* its reach budget. Operating near
    /// the reach limit multiplies this (see [`Wavelength::flap_probability`]).
    #[must_use]
    pub fn base_daily_failure_rate(self) -> f64 {
        match self {
            Modulation::Qpsk => 0.001,
            Modulation::Qam8 => 0.004,
            Modulation::Qam16 => 0.02,
        }
    }

    /// The next more aggressive format, if any.
    #[must_use]
    pub fn step_up(self) -> Option<Modulation> {
        match self {
            Modulation::Qpsk => Some(Modulation::Qam8),
            Modulation::Qam8 => Some(Modulation::Qam16),
            Modulation::Qam16 => None,
        }
    }

    /// The next more conservative format, if any.
    #[must_use]
    pub fn step_down(self) -> Option<Modulation> {
        match self {
            Modulation::Qpsk => None,
            Modulation::Qam8 => Some(Modulation::Qpsk),
            Modulation::Qam16 => Some(Modulation::Qam8),
        }
    }

    /// All formats, conservative to aggressive.
    pub const ALL: [Modulation; 3] = [Modulation::Qpsk, Modulation::Qam8, Modulation::Qam16];
}

/// A physical fiber span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FiberSpan {
    /// Stable identifier.
    pub id: FiberSpanId,
    /// Human-readable name, e.g. `"nyc-lon-seg1"`.
    pub name: String,
    /// Span length in kilometers.
    pub length_km: f64,
    /// Whether this is a submarine (subsea cable) span. Submarine spans
    /// cannot be augmented by lighting new fiber on demand — a fiber
    /// constraint capacity planning must respect (war story 1).
    pub submarine: bool,
    /// Number of additional wavelength slots that can still be lit on this
    /// span. Zero models "fiber constraints in the ground".
    pub spare_wavelength_slots: u32,
}

impl FiberSpan {
    /// Whether a new wavelength can be provisioned over this span.
    #[must_use]
    pub fn can_light_new_wavelength(&self) -> bool {
        self.spare_wavelength_slots > 0
    }
}

/// An optical wavelength: a lit channel across a sequence of fiber spans.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wavelength {
    /// Stable identifier.
    pub id: WavelengthId,
    /// The fiber spans the wavelength traverses, in order.
    pub spans: Vec<FiberSpanId>,
    /// Total optical path length in kilometers (sum of span lengths).
    pub path_km: f64,
    /// Current modulation format.
    pub modulation: Modulation,
}

impl Wavelength {
    /// Fraction of the modulation's reach budget consumed by this path,
    /// in `[0, ∞)`. Above 1.0 the configuration is out of spec.
    #[must_use]
    pub fn reach_utilization(&self) -> f64 {
        self.path_km / self.modulation.max_reach_km()
    }

    /// Whether the current modulation is within its reach budget.
    #[must_use]
    pub fn within_reach(&self) -> bool {
        self.reach_utilization() <= 1.0
    }

    /// Probability that this wavelength flaps (fails and recovers) on a
    /// given simulated day.
    ///
    /// The base rate of the modulation is amplified as the path approaches
    /// the reach limit: at 50 % of reach the base rate applies; the
    /// multiplier grows quadratically to 16× at 100 % of reach and keeps
    /// growing beyond spec. This reproduces the qualitative RADWAN result
    /// that aggressive modulation on long paths flaps frequently.
    #[must_use]
    pub fn flap_probability(&self) -> f64 {
        self.flap_probability_at(self.modulation)
    }

    /// [`Wavelength::flap_probability`] evaluated as if the wavelength ran
    /// `modulation` over its current path — the what-if a remediation
    /// planner asks before retuning: "how much calmer does this path get
    /// one modulation step down?" without mutating the layer.
    #[must_use]
    pub fn flap_probability_at(&self, modulation: Modulation) -> f64 {
        let base = modulation.base_daily_failure_rate();
        let u = self.path_km / modulation.max_reach_km();
        let stress = if u <= 0.5 { 1.0 } else { 1.0 + 15.0 * ((u - 0.5) / 0.5).powi(2) };
        (base * stress).min(1.0)
    }

    /// Capacity delivered to L3 by this wavelength, in Gbps.
    #[must_use]
    pub fn capacity_gbps(&self) -> f64 {
        self.modulation.rate_gbps()
    }
}

/// The optical layer: spans, wavelengths, and the wavelength → L3 link map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpticalLayer {
    spans: Vec<FiberSpan>,
    wavelengths: Vec<Wavelength>,
    /// The typed L1 → L3 map: which [`EdgeId`]s each wavelength carries.
    /// One wavelength may back multiple logical links, and one logical
    /// link may ride multiple wavelengths.
    carries: CrossLayerMap<WavelengthId, EdgeId>,
}

impl OpticalLayer {
    /// Create an empty optical layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fiber span and return its id.
    pub fn add_span(
        &mut self,
        name: impl Into<String>,
        length_km: f64,
        submarine: bool,
        spare_wavelength_slots: u32,
    ) -> FiberSpanId {
        let id = FiberSpanId(self.spans.len() as u32);
        self.spans.push(FiberSpan {
            id,
            name: name.into(),
            length_km,
            submarine,
            spare_wavelength_slots,
        });
        id
    }

    /// Light a wavelength over `spans` at `modulation`, carrying the given
    /// L3 links.
    pub fn light_wavelength(
        &mut self,
        spans: Vec<FiberSpanId>,
        modulation: Modulation,
        l3_links: Vec<EdgeId>,
    ) -> WavelengthId {
        // Span ids come from `add_span`; an out-of-range id (caller bug)
        // contributes zero length rather than aborting the build.
        let path_km =
            spans.iter().filter_map(|s| self.spans.get(s.0 as usize)).map(|sp| sp.length_km).sum();
        let id = WavelengthId(self.wavelengths.len() as u32);
        self.wavelengths.push(Wavelength { id, spans, path_km, modulation });
        let mapped = self.carries.push(l3_links);
        debug_assert_eq!(mapped, id, "wavelength table and L1->L3 map out of sync");
        id
    }

    /// All fiber spans.
    #[must_use]
    pub fn spans(&self) -> &[FiberSpan] {
        &self.spans
    }

    /// All wavelengths.
    #[must_use]
    pub fn wavelengths(&self) -> &[Wavelength] {
        &self.wavelengths
    }

    /// Span by id.
    #[must_use]
    pub fn span(&self, id: FiberSpanId) -> &FiberSpan {
        &self.spans[id.0 as usize]
    }

    /// Wavelength by id.
    #[must_use]
    pub fn wavelength(&self, id: WavelengthId) -> &Wavelength {
        &self.wavelengths[id.0 as usize]
    }

    /// Mutable wavelength by id (e.g. to retune modulation).
    pub fn wavelength_mut(&mut self, id: WavelengthId) -> &mut Wavelength {
        &mut self.wavelengths[id.0 as usize]
    }

    /// L3 links carried by a wavelength.
    #[must_use]
    pub fn links_on_wavelength(&self, id: WavelengthId) -> &[EdgeId] {
        self.carries.down(id)
    }

    /// All wavelengths that carry a given L3 link.
    #[must_use]
    pub fn wavelengths_for_link(&self, l3_link: EdgeId) -> Vec<WavelengthId> {
        self.carries.up(l3_link)
    }

    /// The typed L1 → L3 cross-layer map (wavelength → carried links).
    #[must_use]
    pub fn link_map(&self) -> &CrossLayerMap<WavelengthId, EdgeId> {
        &self.carries
    }

    /// Whether an L3 link can be augmented with a new wavelength: every
    /// span under any existing wavelength of that link must have spare
    /// slots. Returns `None` if the link has no wavelength at all.
    #[must_use]
    pub fn link_upgradeable(&self, l3_link: EdgeId) -> Option<bool> {
        let wls = self.wavelengths_for_link(l3_link);
        if wls.is_empty() {
            return None;
        }
        Some(wls.iter().any(|&w| {
            self.wavelength(w).spans.iter().all(|&s| self.span(s).can_light_new_wavelength())
        }))
    }

    /// Retune a wavelength to a new modulation, returning the old one.
    pub fn retune(&mut self, id: WavelengthId, modulation: Modulation) -> Modulation {
        let w = self.wavelength_mut(id);
        std::mem::replace(&mut w.modulation, modulation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulation_tradeoff_is_monotone() {
        // Rate goes up, reach goes down, failure rate goes up.
        let mut prev: Option<Modulation> = None;
        for m in Modulation::ALL {
            if let Some(p) = prev {
                assert!(m.rate_gbps() > p.rate_gbps());
                assert!(m.max_reach_km() < p.max_reach_km());
                assert!(m.base_daily_failure_rate() > p.base_daily_failure_rate());
            }
            prev = Some(m);
        }
    }

    #[test]
    fn step_up_down_roundtrip() {
        assert_eq!(Modulation::Qpsk.step_up(), Some(Modulation::Qam8));
        assert_eq!(Modulation::Qam16.step_up(), None);
        assert_eq!(Modulation::Qam16.step_down(), Some(Modulation::Qam8));
        assert_eq!(Modulation::Qpsk.step_down(), None);
    }

    fn layer_with_one_wavelength(modulation: Modulation, km: f64) -> (OpticalLayer, WavelengthId) {
        let mut l1 = OpticalLayer::new();
        let s = l1.add_span("test-span", km, false, 4);
        let w = l1.light_wavelength(vec![s], modulation, vec![EdgeId(0)]);
        (l1, w)
    }

    #[test]
    fn flap_probability_grows_with_reach_stress() {
        let (short, ws) = layer_with_one_wavelength(Modulation::Qam16, 100.0);
        let (long, wl) = layer_with_one_wavelength(Modulation::Qam16, 790.0);
        let p_short = short.wavelength(ws).flap_probability();
        let p_long = long.wavelength(wl).flap_probability();
        assert!(
            p_long > 10.0 * p_short,
            "near-reach path should flap much more: {p_short} vs {p_long}"
        );
        assert!(p_long <= 1.0);
    }

    #[test]
    fn aggressive_modulation_on_long_path_is_out_of_spec() {
        let (l1, w) = layer_with_one_wavelength(Modulation::Qam16, 1200.0);
        assert!(!l1.wavelength(w).within_reach());
        let (l1b, wb) = layer_with_one_wavelength(Modulation::Qpsk, 1200.0);
        assert!(l1b.wavelength(wb).within_reach());
    }

    #[test]
    fn wavelength_link_mapping_is_bidirectional() {
        let mut l1 = OpticalLayer::new();
        let s1 = l1.add_span("a-b", 500.0, false, 2);
        let s2 = l1.add_span("b-c", 400.0, false, 0);
        let w1 = l1.light_wavelength(vec![s1, s2], Modulation::Qam8, vec![EdgeId(7), EdgeId(9)]);
        let w2 = l1.light_wavelength(vec![s1], Modulation::Qpsk, vec![EdgeId(7)]);
        assert_eq!(l1.wavelength(w1).path_km, 900.0);
        assert_eq!(l1.links_on_wavelength(w1), &[EdgeId(7), EdgeId(9)]);
        assert_eq!(l1.wavelengths_for_link(EdgeId(7)), vec![w1, w2]);
        assert_eq!(l1.wavelengths_for_link(EdgeId(9)), vec![w1]);
        assert!(l1.wavelengths_for_link(EdgeId(42)).is_empty());
    }

    #[test]
    fn upgradeability_respects_fiber_constraints() {
        let mut l1 = OpticalLayer::new();
        let spare = l1.add_span("land", 500.0, false, 2);
        let full = l1.add_span("subsea", 3000.0, true, 0);
        l1.light_wavelength(vec![spare, full], Modulation::Qpsk, vec![EdgeId(0)]);
        l1.light_wavelength(vec![spare], Modulation::Qpsk, vec![EdgeId(1)]);
        // Link 0 rides a full span — cannot upgrade.
        assert_eq!(l1.link_upgradeable(EdgeId(0)), Some(false));
        // Link 1 rides only the spare span — can upgrade.
        assert_eq!(l1.link_upgradeable(EdgeId(1)), Some(true));
        // Unknown link.
        assert_eq!(l1.link_upgradeable(EdgeId(99)), None);
    }

    #[test]
    fn retune_changes_capacity() {
        let (mut l1, w) = layer_with_one_wavelength(Modulation::Qpsk, 600.0);
        assert_eq!(l1.wavelength(w).capacity_gbps(), 100.0);
        let old = l1.retune(w, Modulation::Qam16);
        assert_eq!(old, Modulation::Qpsk);
        assert_eq!(l1.wavelength(w).capacity_gbps(), 200.0);
    }
}
