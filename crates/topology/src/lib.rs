//! # smn-topology
//!
//! Multi-layer network topology substrate for the Software Managed Networks
//! (SMN) reproduction: a from-scratch directed-graph library
//! ([`graph::DiGraph`]), a Layer-1 optical model with wavelength/modulation
//! tradeoffs ([`layer1`]), a Layer-3 wide-area topology of datacenters,
//! regions and inter-DC links ([`layer3`]), deterministic generators for
//! planetary-scale topologies ([`gen`]), and the unified [`stack`]: typed
//! cross-layer maps (`WavelengthId ↔ EdgeId ↔ ComponentId`) behind a common
//! [`stack::NetLayer`] trait, with generic downward fault propagation
//! (L1 flap → L3 link down → L7 symptom).
//!
//! The graph contraction primitive ([`graph::DiGraph::contract`]) is the
//! structural half of the paper's *topology-based coarsening* (§4): grouping
//! datacenters into region or continent supernodes.
//!
//! ```
//! use smn_topology::gen::reference_wan;
//!
//! let wan = reference_wan();
//! let regions = wan.contract_by_region();
//! assert!(regions.graph.node_count() < wan.dc_count());
//! ```

#![warn(missing_docs)]

pub mod failures;
pub mod gen;
pub mod graph;
pub mod layer1;
pub mod layer3;
pub mod stack;

pub use graph::{DiGraph, EdgeId, NodeId, Path};
pub use layer3::Wan;
pub use stack::{
    ComponentId, CrossLayerMap, LayerId, LayerKey, LayerStack, NetLayer, ServiceLayer, StackFault,
    StackImpact,
};
