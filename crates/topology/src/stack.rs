//! The unified layer stack: one typed substrate for L1 → L3 → L7 coupling.
//!
//! The paper's controllers reason *across* layers — an optical span
//! confounds the L3 links riding it, and a dead L3 link surfaces as L7
//! service symptoms. Before this module the workspace encoded that
//! coupling three different ways (bare `usize` indices in
//! [`OpticalLayer`], a private `Layer` enum in `smn-depgraph`, and
//! hand-derived maps in `smn-te` / `smn-incident`). Here the coupling is
//! one abstraction:
//!
//! * [`LayerId`] names the three stack layers in propagation order.
//! * [`CrossLayerMap`] is a typed, bidirectional mapping between adjacent
//!   layers (`WavelengthId ↔ EdgeId`, `EdgeId ↔ ComponentId`).
//! * [`NetLayer`] is the common trait each registered layer implements,
//!   so generic code can size and name any layer uniformly.
//! * [`LayerStack`] registers the layers plus the maps and walks faults
//!   down ([`LayerStack::propagate_down`]) or dependencies up
//!   ([`LayerStack::propagate_up`]) generically.
//!
//! Everything is deterministic: impact sets come out sorted by id, and
//! the serialized form of a [`CrossLayerMap`] is the plain
//! seq-of-seqs-of-indices its predecessor (`Vec<Vec<usize>>`) used, so
//! existing topology artifacts keep their wire shape.

use std::fmt;
use std::marker::PhantomData;

use serde::{Deserialize, Error, Serialize, Value};

use crate::graph::EdgeId;
use crate::layer1::{OpticalLayer, WavelengthId};
use crate::layer3::Wan;

/// Identifier for an L7 service-graph component (an application component
/// in the incident app's dependency graph, by node index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// The component's position in the service graph's node table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The layers of the unified stack, in downward propagation order.
///
/// `L1` (optical wavelengths) confounds `L3` (WAN links) confounds `L7`
/// (application components). [`LayerId::rank`] encodes that order; the
/// artifact checker enforces it on serialized stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerId {
    /// The optical substrate: fiber spans and wavelengths.
    L1,
    /// The logical WAN: datacenters and links.
    L3,
    /// The application service graph: components and dependencies.
    L7,
}

impl LayerId {
    /// All layers, topmost (physical) first — the propagation order.
    pub const ALL: [LayerId; 3] = [LayerId::L1, LayerId::L3, LayerId::L7];

    /// Position in the stack: 0 for L1, 1 for L3, 2 for L7.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            LayerId::L1 => 0,
            LayerId::L3 => 1,
            LayerId::L7 => 2,
        }
    }

    /// Canonical name, e.g. `"L1"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LayerId::L1 => "L1",
            LayerId::L3 => "L3",
            LayerId::L7 => "L7",
        }
    }

    /// Parse a canonical name back into a layer.
    #[must_use]
    pub fn parse(name: &str) -> Option<LayerId> {
        LayerId::ALL.into_iter().find(|l| l.name() == name)
    }

    /// The next layer downward (toward the application), if any.
    #[must_use]
    pub fn below(self) -> Option<LayerId> {
        match self {
            LayerId::L1 => Some(LayerId::L3),
            LayerId::L3 => Some(LayerId::L7),
            LayerId::L7 => None,
        }
    }

    /// The next layer upward (toward the fiber), if any.
    #[must_use]
    pub fn above(self) -> Option<LayerId> {
        match self {
            LayerId::L1 => None,
            LayerId::L3 => Some(LayerId::L1),
            LayerId::L7 => Some(LayerId::L3),
        }
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for LayerId {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for LayerId {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => {
                LayerId::parse(s).ok_or_else(|| Error::msg(format!("unknown layer {s:?}")))
            }
            other => Err(Error::msg(format!("expected layer name string, got {other:?}"))),
        }
    }
}

/// A typed element id within one stack layer.
///
/// Implemented by [`WavelengthId`] (L1), [`EdgeId`] (L3), and
/// [`ComponentId`] (L7). The trait ties each id type to its layer and to
/// the dense index the layer's tables use, which is what lets
/// [`CrossLayerMap`] stay a flat vector while its API stays typed.
pub trait LayerKey: Copy + Ord + fmt::Debug {
    /// The stack layer this id type belongs to.
    const LAYER: LayerId;

    /// Build the id from a dense table index.
    fn from_layer_index(index: usize) -> Self;

    /// The dense table index of this id.
    fn layer_index(self) -> usize;
}

impl LayerKey for WavelengthId {
    const LAYER: LayerId = LayerId::L1;

    fn from_layer_index(index: usize) -> Self {
        WavelengthId(index as u32)
    }

    fn layer_index(self) -> usize {
        self.0 as usize
    }
}

impl LayerKey for EdgeId {
    const LAYER: LayerId = LayerId::L3;

    fn from_layer_index(index: usize) -> Self {
        EdgeId(index as u32)
    }

    fn layer_index(self) -> usize {
        self.0 as usize
    }
}

impl LayerKey for ComponentId {
    const LAYER: LayerId = LayerId::L7;

    fn from_layer_index(index: usize) -> Self {
        ComponentId(index as u32)
    }

    fn layer_index(self) -> usize {
        self.0 as usize
    }
}

/// A typed, bidirectional mapping between an upper and a lower stack
/// layer: `down[u]` is the (ordered) list of lower-layer elements that
/// upper element `u` confounds.
///
/// The inverse direction ([`CrossLayerMap::up`]) is answered by a scan in
/// ascending upper-id order, so both directions are deterministic. The
/// serialized form is a plain sequence of sequences of indices — exactly
/// the wire shape of the untyped `Vec<Vec<usize>>` it replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossLayerMap<U, D> {
    down: Vec<Vec<D>>,
    _upper: PhantomData<U>,
}

impl<U, D> Default for CrossLayerMap<U, D> {
    fn default() -> Self {
        Self { down: Vec::new(), _upper: PhantomData }
    }
}

impl<U: LayerKey, D: LayerKey> CrossLayerMap<U, D> {
    /// An empty mapping.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of upper-layer entries.
    #[must_use]
    pub fn upper_len(&self) -> usize {
        self.down.len()
    }

    /// Whether the map has no upper-layer entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }

    /// Append the next upper-layer element with its downward references,
    /// returning the typed id it was registered under.
    pub fn push(&mut self, downs: Vec<D>) -> U {
        let id = U::from_layer_index(self.down.len());
        self.down.push(downs);
        id
    }

    /// Downward lookup: the lower-layer elements confounded by `upper`.
    /// Unknown ids map to the empty set rather than panicking.
    pub fn down(&self, upper: U) -> &[D] {
        self.down.get(upper.layer_index()).map_or(&[], Vec::as_slice)
    }

    /// Upward lookup: every upper-layer element that confounds `lower`,
    /// in ascending id order.
    pub fn up(&self, lower: D) -> Vec<U> {
        self.down
            .iter()
            .enumerate()
            .filter(|(_, downs)| downs.contains(&lower))
            .map(|(i, _)| U::from_layer_index(i))
            .collect()
    }

    /// Whether `upper` maps down to `lower`.
    pub fn maps(&self, upper: U, lower: D) -> bool {
        self.down(upper).contains(&lower)
    }

    /// Iterate `(upper id, downward refs)` in ascending upper-id order.
    pub fn entries(&self) -> impl Iterator<Item = (U, &[D])> + '_ {
        self.down.iter().enumerate().map(|(i, d)| (U::from_layer_index(i), d.as_slice()))
    }

    /// The largest lower-layer index referenced anywhere, if any
    /// reference exists. Validation uses this to catch dangling refs.
    #[must_use]
    pub fn max_lower_index(&self) -> Option<usize> {
        self.down.iter().flatten().map(|d| d.layer_index()).max()
    }
}

impl<U: LayerKey, D: LayerKey> Serialize for CrossLayerMap<U, D> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.down
                .iter()
                .map(|row| {
                    Value::Seq(row.iter().map(|d| Value::U64(d.layer_index() as u64)).collect())
                })
                .collect(),
        )
    }
}

impl<U: LayerKey, D: LayerKey> Deserialize for CrossLayerMap<U, D> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let Value::Seq(rows) = v else {
            return Err(Error::msg(format!("expected cross-layer seq, got {v:?}")));
        };
        let mut down = Vec::with_capacity(rows.len());
        for row in rows {
            let Value::Seq(items) = row else {
                return Err(Error::msg(format!("expected index seq, got {row:?}")));
            };
            let mut refs = Vec::with_capacity(items.len());
            for item in items {
                let idx = usize::from_value(item)?;
                refs.push(D::from_layer_index(idx));
            }
            down.push(refs);
        }
        Ok(Self { down, _upper: PhantomData })
    }
}

/// The common face of a registered stack layer: generic code can ask any
/// layer which [`LayerId`] it is, how many elements it has, and what an
/// element is called, without knowing the layer's concrete type.
pub trait NetLayer {
    /// Which stack layer this is.
    fn layer_id(&self) -> LayerId;

    /// Number of elements (wavelengths / links / components).
    fn element_count(&self) -> usize;

    /// Human-readable name of the element at `index`.
    fn element_name(&self, index: usize) -> String;
}

impl NetLayer for OpticalLayer {
    fn layer_id(&self) -> LayerId {
        LayerId::L1
    }

    fn element_count(&self) -> usize {
        self.wavelengths().len()
    }

    fn element_name(&self, index: usize) -> String {
        format!("w{index}")
    }
}

impl NetLayer for Wan {
    fn layer_id(&self) -> LayerId {
        LayerId::L3
    }

    fn element_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn element_name(&self, index: usize) -> String {
        let eid = EdgeId(index as u32);
        if index < self.graph.edge_count() {
            let (src, dst) = self.graph.endpoints(eid);
            format!("{}->{}", self.graph.node(src).name, self.graph.node(dst).name)
        } else {
            format!("{eid}")
        }
    }
}

/// The L7 layer as the stack sees it: the ordered component names of the
/// incident app's service graph. The intra-layer dependency structure
/// stays in `smn-depgraph`; the stack only needs identity and naming to
/// resolve cross-layer references.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceLayer {
    names: Vec<String>,
}

impl ServiceLayer {
    /// An empty service layer (a stack with no L7 registered yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from component names in service-graph node order.
    #[must_use]
    pub fn from_names(names: Vec<String>) -> Self {
        Self { names }
    }

    /// The component id for a name, if registered.
    #[must_use]
    pub fn id_of(&self, name: &str) -> Option<ComponentId> {
        self.names.iter().position(|n| n == name).map(|i| ComponentId(i as u32))
    }

    /// The name of a component id, if in range.
    pub fn name_of(&self, id: ComponentId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }
}

impl NetLayer for ServiceLayer {
    fn layer_id(&self) -> LayerId {
        LayerId::L7
    }

    fn element_count(&self) -> usize {
        self.names.len()
    }

    fn element_name(&self, index: usize) -> String {
        self.names.get(index).cloned().unwrap_or_else(|| format!("{}", ComponentId(index as u32)))
    }
}

/// A fault injected at one layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackFault {
    /// An optical wavelength flaps (L1).
    WavelengthFlap(WavelengthId),
    /// A WAN link goes down (L3).
    LinkDown(EdgeId),
    /// An application component faults (L7).
    ComponentFault(ComponentId),
}

impl StackFault {
    /// The layer the fault originates at.
    #[must_use]
    pub fn origin(self) -> LayerId {
        match self {
            StackFault::WavelengthFlap(_) => LayerId::L1,
            StackFault::LinkDown(_) => LayerId::L3,
            StackFault::ComponentFault(_) => LayerId::L7,
        }
    }
}

/// The typed cross-layer blast set of a [`StackFault`]: per layer, the
/// elements the fault confounds, each sorted ascending and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackImpact {
    /// Layer the originating fault was injected at.
    pub origin: Option<LayerId>,
    /// Affected L1 wavelengths.
    pub wavelengths: Vec<WavelengthId>,
    /// Affected L3 links.
    pub links: Vec<EdgeId>,
    /// Affected L7 components.
    pub components: Vec<ComponentId>,
}

impl StackImpact {
    /// Total number of affected elements across all layers.
    #[must_use]
    pub fn blast_size(&self) -> usize {
        self.wavelengths.len() + self.links.len() + self.components.len()
    }
}

/// Why a [`LayerStack`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackError {
    /// A cross-layer reference points past the lower layer's table.
    DanglingRef {
        /// Upper layer of the offending map.
        from: LayerId,
        /// Lower layer of the offending map.
        to: LayerId,
        /// The out-of-range lower index.
        index: usize,
        /// Size of the lower layer's table.
        len: usize,
    },
    /// A map has more upper entries than the upper layer has elements.
    UpperOverflow {
        /// Upper layer of the offending map.
        from: LayerId,
        /// Upper entries in the map.
        mapped: usize,
        /// Elements registered in the upper layer.
        len: usize,
    },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::DanglingRef { from, to, index, len } => {
                write!(f, "{from}->{to} reference {index} out of range (layer has {len})")
            }
            StackError::UpperOverflow { from, mapped, len } => {
                write!(f, "{from} map has {mapped} entries but the layer has {len}")
            }
        }
    }
}

/// The registered stack: the three layers plus the typed maps between
/// adjacent layers. The L1 → L3 map lives inside [`OpticalLayer`] (it is
/// the wavelength table's `carries` map); the L3 → L7 map is registered
/// here when an application binds its service graph.
#[derive(Debug, Clone)]
pub struct LayerStack {
    optical: OpticalLayer,
    wan: Wan,
    services: ServiceLayer,
    l3_l7: CrossLayerMap<EdgeId, ComponentId>,
}

impl LayerStack {
    /// Register the two network layers; the service layer starts empty.
    #[must_use]
    pub fn new(optical: OpticalLayer, wan: Wan) -> Self {
        Self { optical, wan, services: ServiceLayer::new(), l3_l7: CrossLayerMap::new() }
    }

    /// Register the L7 service layer and its L3 → L7 map.
    #[must_use]
    pub fn with_services(
        mut self,
        services: ServiceLayer,
        l3_l7: CrossLayerMap<EdgeId, ComponentId>,
    ) -> Self {
        self.services = services;
        self.l3_l7 = l3_l7;
        self
    }

    /// The optical (L1) layer.
    #[must_use]
    pub fn optical(&self) -> &OpticalLayer {
        &self.optical
    }

    /// Mutable optical layer (e.g. for retuning wavelengths).
    pub fn optical_mut(&mut self) -> &mut OpticalLayer {
        &mut self.optical
    }

    /// The WAN (L3) layer.
    #[must_use]
    pub fn wan(&self) -> &Wan {
        &self.wan
    }

    /// The service (L7) layer.
    #[must_use]
    pub fn services(&self) -> &ServiceLayer {
        &self.services
    }

    /// The typed L1 → L3 map (wavelength → links).
    #[must_use]
    pub fn l1_l3(&self) -> &CrossLayerMap<WavelengthId, EdgeId> {
        self.optical.link_map()
    }

    /// The typed L3 → L7 map (link → components).
    #[must_use]
    pub fn l3_l7(&self) -> &CrossLayerMap<EdgeId, ComponentId> {
        &self.l3_l7
    }

    /// The registered layer behind the common [`NetLayer`] face.
    #[must_use]
    pub fn layer(&self, id: LayerId) -> &dyn NetLayer {
        match id {
            LayerId::L1 => &self.optical,
            LayerId::L3 => &self.wan,
            LayerId::L7 => &self.services,
        }
    }

    /// Check every cross-layer reference resolves and every map fits its
    /// upper layer.
    pub fn validate(&self) -> Result<(), StackError> {
        let wavelengths = self.optical.wavelengths().len();
        let links = self.wan.graph.edge_count();
        let components = self.services.element_count();
        let l1_l3 = self.l1_l3();
        if l1_l3.upper_len() > wavelengths {
            return Err(StackError::UpperOverflow {
                from: LayerId::L1,
                mapped: l1_l3.upper_len(),
                len: wavelengths,
            });
        }
        if let Some(max) = l1_l3.max_lower_index() {
            if max >= links {
                return Err(StackError::DanglingRef {
                    from: LayerId::L1,
                    to: LayerId::L3,
                    index: max,
                    len: links,
                });
            }
        }
        if self.l3_l7.upper_len() > links {
            return Err(StackError::UpperOverflow {
                from: LayerId::L3,
                mapped: self.l3_l7.upper_len(),
                len: links,
            });
        }
        if let Some(max) = self.l3_l7.max_lower_index() {
            if max >= components {
                return Err(StackError::DanglingRef {
                    from: LayerId::L3,
                    to: LayerId::L7,
                    index: max,
                    len: components,
                });
            }
        }
        Ok(())
    }

    /// Walk a fault downward through the stack: L1 flap → L3 links down
    /// → L7 components symptomatic. Each affected set comes out sorted
    /// ascending and deduplicated, so the walk is deterministic.
    #[must_use]
    pub fn propagate_down(&self, fault: StackFault) -> StackImpact {
        let mut impact = StackImpact { origin: Some(fault.origin()), ..StackImpact::default() };
        match fault {
            StackFault::WavelengthFlap(w) => {
                impact.wavelengths.push(w);
                impact.links = sorted_dedup(self.l1_l3().down(w).to_vec());
                impact.components = self.components_for_links(&impact.links);
            }
            StackFault::LinkDown(e) => {
                impact.links.push(e);
                impact.components = self.components_for_links(&impact.links);
            }
            StackFault::ComponentFault(c) => {
                impact.components.push(c);
            }
        }
        impact
    }

    /// [`LayerStack::propagate_down`] wrapped in an observability span
    /// named `stack/propagate`, recording the origin layer and the
    /// per-layer blast sizes as exit fields.
    pub fn propagate_down_observed(&self, fault: StackFault, obs: &smn_obs::Obs) -> StackImpact {
        if !obs.is_enabled() {
            return self.propagate_down(fault);
        }
        let mut span =
            obs.span_with("stack/propagate", &[("origin", fault.origin().name().into())]);
        let impact = self.propagate_down(fault);
        span.field("wavelengths", impact.wavelengths.len());
        span.field("links", impact.links.len());
        span.field("components", impact.components.len());
        impact
    }

    /// Walk upward: which links carry a component, and which wavelengths
    /// back those links. The inverse of [`LayerStack::propagate_down`].
    #[must_use]
    pub fn propagate_up(&self, fault: StackFault) -> StackImpact {
        let mut impact = StackImpact { origin: Some(fault.origin()), ..StackImpact::default() };
        match fault {
            StackFault::ComponentFault(c) => {
                impact.components.push(c);
                impact.links = sorted_dedup(self.l3_l7.up(c));
                impact.wavelengths = self.wavelengths_for_links(&impact.links);
            }
            StackFault::LinkDown(e) => {
                impact.links.push(e);
                impact.wavelengths = self.wavelengths_for_links(&impact.links);
            }
            StackFault::WavelengthFlap(w) => {
                impact.wavelengths.push(w);
            }
        }
        impact
    }

    fn components_for_links(&self, links: &[EdgeId]) -> Vec<ComponentId> {
        sorted_dedup(links.iter().flat_map(|&e| self.l3_l7.down(e).iter().copied()).collect())
    }

    fn wavelengths_for_links(&self, links: &[EdgeId]) -> Vec<WavelengthId> {
        sorted_dedup(links.iter().flat_map(|&e| self.l1_l3().up(e)).collect())
    }
}

fn sorted_dedup<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer1::Modulation;
    use crate::layer3::{Continent, Datacenter, LinkAttrs, RegionId};

    fn small_stack() -> LayerStack {
        let mut optical = OpticalLayer::new();
        let s1 = optical.add_span("a-b", 500.0, false, 2);
        let s2 = optical.add_span("b-c", 400.0, true, 0);
        let mut wan = Wan::new();
        let a = wan.add_datacenter(Datacenter {
            name: "a".into(),
            continent: Continent::NorthAmerica,
            region: RegionId(0),
            lat: 0.0,
            lon: 0.0,
        });
        let b = wan.add_datacenter(Datacenter {
            name: "b".into(),
            continent: Continent::Europe,
            region: RegionId(1),
            lat: 0.0,
            lon: 10.0,
        });
        let e0 = wan.add_link(a, b, LinkAttrs::new(100.0, 500.0, false));
        let e1 = wan.add_link(b, a, LinkAttrs::new(100.0, 500.0, false));
        optical.light_wavelength(vec![s1, s2], Modulation::Qam8, vec![e0, e1]);
        optical.light_wavelength(vec![s1], Modulation::Qpsk, vec![e0]);
        let mut l3_l7 = CrossLayerMap::new();
        l3_l7.push(vec![ComponentId(1)]); // e0 -> wan component
        l3_l7.push(vec![ComponentId(1)]); // e1 -> wan component
        let services =
            ServiceLayer::from_names(vec!["frontend-1".to_string(), "wan-1".to_string()]);
        LayerStack::new(optical, wan).with_services(services, l3_l7)
    }

    #[test]
    fn cross_layer_map_round_trips_both_directions() {
        let mut map: CrossLayerMap<WavelengthId, EdgeId> = CrossLayerMap::new();
        let w0 = map.push(vec![EdgeId(7), EdgeId(9)]);
        let w1 = map.push(vec![EdgeId(7)]);
        assert_eq!(map.down(w0), &[EdgeId(7), EdgeId(9)]);
        assert_eq!(map.up(EdgeId(7)), vec![w0, w1]);
        assert_eq!(map.up(EdgeId(9)), vec![w0]);
        assert!(map.up(EdgeId(42)).is_empty());
        assert!(map.down(WavelengthId(99)).is_empty());
        assert_eq!(map.max_lower_index(), Some(9));
        assert!(map.maps(w0, EdgeId(9)));
        assert!(!map.maps(w1, EdgeId(9)));
    }

    #[test]
    fn cross_layer_map_serializes_as_plain_index_rows() {
        let mut map: CrossLayerMap<WavelengthId, EdgeId> = CrossLayerMap::new();
        map.push(vec![EdgeId(3)]);
        map.push(vec![]);
        let v = map.to_value();
        let Value::Seq(rows) = &v else { panic!("expected seq") };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], Value::Seq(vec![Value::U64(3)]));
        let back = CrossLayerMap::<WavelengthId, EdgeId>::from_value(&v).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn layer_ids_order_and_parse() {
        assert!(LayerId::L1.rank() < LayerId::L3.rank());
        assert!(LayerId::L3.rank() < LayerId::L7.rank());
        assert_eq!(LayerId::L1.below(), Some(LayerId::L3));
        assert_eq!(LayerId::L7.below(), None);
        assert_eq!(LayerId::L7.above(), Some(LayerId::L3));
        for l in LayerId::ALL {
            assert_eq!(LayerId::parse(l.name()), Some(l));
        }
        assert_eq!(LayerId::parse("L9"), None);
    }

    #[test]
    fn stack_registers_layers_behind_net_layer() {
        let stack = small_stack();
        assert_eq!(stack.layer(LayerId::L1).element_count(), 2);
        assert_eq!(stack.layer(LayerId::L3).element_count(), 2);
        assert_eq!(stack.layer(LayerId::L7).element_count(), 2);
        assert_eq!(stack.layer(LayerId::L1).element_name(0), "w0");
        assert_eq!(stack.layer(LayerId::L3).element_name(0), "a->b");
        assert_eq!(stack.layer(LayerId::L7).element_name(1), "wan-1");
        for id in LayerId::ALL {
            assert_eq!(stack.layer(id).layer_id(), id);
        }
    }

    #[test]
    fn fault_propagates_down_the_whole_stack() {
        let stack = small_stack();
        let impact = stack.propagate_down(StackFault::WavelengthFlap(WavelengthId(0)));
        assert_eq!(impact.origin, Some(LayerId::L1));
        assert_eq!(impact.wavelengths, vec![WavelengthId(0)]);
        assert_eq!(impact.links, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(impact.components, vec![ComponentId(1)]);
        assert_eq!(impact.blast_size(), 4);

        let mid = stack.propagate_down(StackFault::LinkDown(EdgeId(0)));
        assert_eq!(mid.origin, Some(LayerId::L3));
        assert!(mid.wavelengths.is_empty());
        assert_eq!(mid.components, vec![ComponentId(1)]);
    }

    #[test]
    fn propagate_up_inverts_the_walk() {
        let stack = small_stack();
        let up = stack.propagate_up(StackFault::ComponentFault(ComponentId(1)));
        assert_eq!(up.links, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(up.wavelengths, vec![WavelengthId(0), WavelengthId(1)]);
    }

    #[test]
    fn observed_propagation_traces_the_walk() {
        let stack = small_stack();
        let obs = smn_obs::Obs::enabled(smn_obs::clock::SimClock::new());
        let impact =
            stack.propagate_down_observed(StackFault::WavelengthFlap(WavelengthId(0)), &obs);
        assert_eq!(impact.links.len(), 2);
        assert_eq!(obs.trace_len(), 2); // enter + exit
        let off = smn_obs::Obs::disabled();
        let same = stack.propagate_down_observed(StackFault::WavelengthFlap(WavelengthId(0)), &off);
        assert_eq!(same, impact);
        assert_eq!(off.trace_len(), 0);
    }

    #[test]
    fn validate_catches_dangling_refs() {
        let stack = small_stack();
        assert_eq!(stack.validate(), Ok(()));

        let mut bad = small_stack();
        bad.l3_l7 = {
            let mut m = CrossLayerMap::new();
            m.push(vec![ComponentId(9)]); // only 2 components registered
            m
        };
        assert!(matches!(
            bad.validate(),
            Err(StackError::DanglingRef { from: LayerId::L3, to: LayerId::L7, index: 9, len: 2 })
        ));
    }

    #[test]
    fn service_layer_name_lookup() {
        let s = ServiceLayer::from_names(vec!["a".into(), "b".into()]);
        assert_eq!(s.id_of("b"), Some(ComponentId(1)));
        assert_eq!(s.id_of("zz"), None);
        assert_eq!(s.name_of(ComponentId(0)), Some("a"));
        assert_eq!(s.name_of(ComponentId(5)), None);
        assert_eq!(s.element_name(5), "c5");
    }
}
