//! Layer-3 (logical) wide-area topology: datacenters, regions, inter-DC links.
//!
//! This is the structure over which bandwidth logs are collected (§4) and
//! over which topology-based coarsening groups datacenters into region or
//! continent supernodes. Each datacenter carries a geographic hierarchy
//! (continent → region → DC) so that the coarsening levels the paper
//! discusses — "US east coast" regions, whole continents — are directly
//! expressible as contractions.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::graph::{Contraction, DiGraph, EdgeId, NodeId};

/// A continent, the coarsest geographic unit ("a supernode represents all
/// datacenters in a continent … a small topology of 7 nodes", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Africa.
    Africa,
    /// Asia.
    Asia,
    /// Oceania.
    Oceania,
    /// Antarctica (kept so the continent count is the paper's 7).
    Antarctica,
}

impl Continent {
    /// All continents.
    pub const ALL: [Continent; 7] = [
        Continent::NorthAmerica,
        Continent::SouthAmerica,
        Continent::Europe,
        Continent::Africa,
        Continent::Asia,
        Continent::Oceania,
        Continent::Antarctica,
    ];

    /// Short code used in names, e.g. `"na"`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Continent::NorthAmerica => "na",
            Continent::SouthAmerica => "sa",
            Continent::Europe => "eu",
            Continent::Africa => "af",
            Continent::Asia => "ap",
            Continent::Oceania => "oc",
            Continent::Antarctica => "an",
        }
    }
}

/// Identifier of a geographic region within a continent (e.g. "us-east").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u16);

/// A datacenter: the L3 node granularity of uncoarsened bandwidth logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Datacenter {
    /// Name such as `"us-e1"` (matches the log format in the paper's Listing 1).
    pub name: String,
    /// Continent the DC sits on.
    pub continent: Continent,
    /// Region within the continent.
    pub region: RegionId,
    /// Approximate position (degrees latitude / longitude) for distance and
    /// geographic-clustering computations.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// Attributes of a logical inter-DC link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkAttrs {
    /// Capacity in Gbps.
    pub capacity_gbps: f64,
    /// Great-circle distance between the endpoints in km.
    pub distance_km: f64,
    /// Whether the link crosses an ocean (rides subsea cable spans).
    pub subsea: bool,
    /// Whether the link is currently up.
    pub up: bool,
}

impl LinkAttrs {
    /// A fresh, up link.
    #[must_use]
    pub fn new(capacity_gbps: f64, distance_km: f64, subsea: bool) -> Self {
        Self { capacity_gbps, distance_km, subsea, up: true }
    }
}

/// The L3 wide-area network: a directed graph of datacenters.
///
/// Links are directed (capacity may be asymmetric); generators add both
/// directions. `Wan` wraps [`DiGraph`] with datacenter-aware lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wan {
    /// The underlying graph. Public so solvers can run directly on it.
    pub graph: DiGraph<Datacenter, LinkAttrs>,
    name_index: HashMap<String, NodeId>,
}

impl Default for Wan {
    fn default() -> Self {
        Self::new()
    }
}

impl Wan {
    /// An empty WAN.
    #[must_use]
    pub fn new() -> Self {
        Self { graph: DiGraph::new(), name_index: HashMap::new() }
    }

    /// Add a datacenter.
    ///
    /// # Panics
    /// Panics if a DC with the same name already exists.
    pub fn add_datacenter(&mut self, dc: Datacenter) -> NodeId {
        assert!(!self.name_index.contains_key(&dc.name), "duplicate datacenter name {}", dc.name);
        let name = dc.name.clone();
        let id = self.graph.add_node(dc);
        self.name_index.insert(name, id);
        id
    }

    /// Add a unidirectional link.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, attrs: LinkAttrs) -> EdgeId {
        self.graph.add_edge(src, dst, attrs)
    }

    /// Add both directions of a link with identical attributes; returns
    /// `(forward, backward)` edge ids.
    pub fn add_bidi_link(&mut self, a: NodeId, b: NodeId, attrs: LinkAttrs) -> (EdgeId, EdgeId) {
        let f = self.graph.add_edge(a, b, attrs.clone());
        let r = self.graph.add_edge(b, a, attrs);
        (f, r)
    }

    /// Look up a datacenter by name.
    #[must_use]
    pub fn dc_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Datacenter payload of a node.
    #[must_use]
    pub fn dc(&self, id: NodeId) -> &Datacenter {
        self.graph.node(id)
    }

    /// Number of datacenters.
    #[must_use]
    pub fn dc_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Mark a link up or down (e.g. when its wavelength flaps).
    pub fn set_link_up(&mut self, link: EdgeId, up: bool) {
        self.graph.edge_mut(link).up = up;
    }

    /// Great-circle distance between two DCs in kilometers (haversine).
    #[must_use]
    pub fn distance_km(&self, a: NodeId, b: NodeId) -> f64 {
        haversine_km(self.dc(a).lat, self.dc(a).lon, self.dc(b).lat, self.dc(b).lon)
    }

    /// Distinct regions present, in node order.
    #[must_use]
    pub fn regions(&self) -> Vec<(Continent, RegionId)> {
        let mut seen = Vec::new();
        for (_, dc) in self.graph.nodes() {
            let key = (dc.continent, dc.region);
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    }

    /// Contract the WAN so each (continent, region) pair becomes one
    /// supernode. Parallel inter-region links merge by capacity sum — the
    /// region-level coarsening of §4.
    #[must_use]
    pub fn contract_by_region(&self) -> Contraction<SuperNode, SuperLink> {
        self.contract_by_label(|_, dc| format!("{}-r{}", dc.continent.code(), dc.region.0))
    }

    /// Contract the WAN so each continent becomes one supernode — the
    /// degenerate 7-node coarsening the paper warns about.
    #[must_use]
    pub fn contract_by_continent(&self) -> Contraction<SuperNode, SuperLink> {
        self.contract_by_label(|_, dc| dc.continent.code().to_string())
    }

    /// Contract by an arbitrary labeling of datacenters — the one generic
    /// contraction path. Region, continent, and geo-cluster contractions
    /// are all labelings fed through here, so supernode naming, member
    /// ordering, and link folding behave identically across granularities.
    pub fn contract_by_label(
        &self,
        mut label: impl FnMut(NodeId, &Datacenter) -> String,
    ) -> Contraction<SuperNode, SuperLink> {
        self.graph.contract(
            |id, dc| label(id, dc),
            |key, members| SuperNode { name: key, dc_count: members.len() },
            fold_link,
        )
    }

    /// Contract the WAN into `k` geographic clusters via Lloyd's k-means on
    /// (lat, lon), deterministically seeded. This gives a *parametric*
    /// granularity family between "regions" and "continents" for Pareto
    /// sweeps over coarsening levels (§4 RQ1).
    ///
    /// # Panics
    /// Panics when `k` is zero or exceeds the datacenter count.
    #[must_use]
    pub fn contract_by_geo_clusters(
        &self,
        k: usize,
        seed: u64,
    ) -> Contraction<SuperNode, SuperLink> {
        assert!(k > 0 && k <= self.dc_count(), "k must be in 1..=dc_count");
        let points: Vec<(f64, f64)> = self.graph.nodes().map(|(_, dc)| (dc.lat, dc.lon)).collect();
        // Deterministic centroid init: spread over the node list.
        let mut centroids: Vec<(f64, f64)> =
            (0..k).map(|i| points[(i * points.len() / k + seed as usize) % points.len()]).collect();
        let mut assign = vec![0usize; points.len()];
        for _iter in 0..25 {
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da = (p.0 - a.0).powi(2) + (p.1 - a.1).powi(2);
                        let db = (p.0 - b.0).powi(2) + (p.1 - b.1).powi(2);
                        da.total_cmp(&db)
                    })
                    .map_or(assign[i], |(j, _)| j);
                if assign[i] != best {
                    assign[i] = best;
                    changed = true;
                }
            }
            // Recompute centroids; empty clusters keep their position.
            let mut sums = vec![(0.0, 0.0, 0usize); k];
            for (i, p) in points.iter().enumerate() {
                let s = &mut sums[assign[i]];
                s.0 += p.0;
                s.1 += p.1;
                s.2 += 1;
            }
            for (j, s) in sums.iter().enumerate() {
                if s.2 > 0 {
                    centroids[j] = (s.0 / s.2 as f64, s.1 / s.2 as f64);
                }
            }
            if !changed {
                break;
            }
        }
        self.contract_by_label(|id, _| format!("geo{}", assign[id.index()]))
    }
}

fn fold_link(acc: Option<SuperLink>, link: &LinkAttrs) -> SuperLink {
    let mut s = acc.unwrap_or(SuperLink {
        capacity_gbps: 0.0,
        member_links: 0,
        min_distance_km: f64::INFINITY,
        any_subsea: false,
    });
    if link.up {
        s.capacity_gbps += link.capacity_gbps;
    }
    s.member_links += 1;
    s.min_distance_km = s.min_distance_km.min(link.distance_km);
    s.any_subsea |= link.subsea;
    s
}

/// A supernode produced by contracting datacenters (region or continent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperNode {
    /// Label, e.g. `"na-r3"` or `"eu"`.
    pub name: String,
    /// How many datacenters were merged into this supernode.
    pub dc_count: usize,
}

/// A coarse link between supernodes: the fold of all member links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperLink {
    /// Sum of member-link capacities that are currently up.
    pub capacity_gbps: f64,
    /// Number of physical member links folded in.
    pub member_links: usize,
    /// Shortest member distance (proxy for latency of the coarse link).
    pub min_distance_km: f64,
    /// True if any member link is subsea.
    pub any_subsea: bool,
}

/// Haversine great-circle distance in kilometers.
#[must_use]
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const R: f64 = 6371.0;
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dp = (lat2 - lat1).to_radians();
    let dl = (lon2 - lon1).to_radians();
    let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
    2.0 * R * a.sqrt().atan2((1.0 - a).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(name: &str, continent: Continent, region: u16, lat: f64, lon: f64) -> Datacenter {
        Datacenter { name: name.into(), continent, region: RegionId(region), lat, lon }
    }

    /// Four DCs: two in na region 0, one in na region 1, one in eu region 0.
    fn small_wan() -> Wan {
        let mut w = Wan::new();
        let a = w.add_datacenter(dc("us-e1", Continent::NorthAmerica, 0, 39.0, -77.5));
        let b = w.add_datacenter(dc("us-e2", Continent::NorthAmerica, 0, 40.7, -74.0));
        let c = w.add_datacenter(dc("us-w1", Continent::NorthAmerica, 1, 45.6, -121.2));
        let d = w.add_datacenter(dc("eu-w1", Continent::Europe, 0, 53.3, -6.3));
        w.add_bidi_link(a, b, LinkAttrs::new(400.0, 300.0, false));
        w.add_bidi_link(a, c, LinkAttrs::new(800.0, 3700.0, false));
        w.add_bidi_link(b, c, LinkAttrs::new(400.0, 3900.0, false));
        w.add_bidi_link(a, d, LinkAttrs::new(600.0, 5500.0, true));
        w
    }

    #[test]
    fn name_lookup_and_counts() {
        let w = small_wan();
        assert_eq!(w.dc_count(), 4);
        assert_eq!(w.link_count(), 8);
        let id = w.dc_by_name("us-w1").unwrap();
        assert_eq!(w.dc(id).region, RegionId(1));
        assert!(w.dc_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate datacenter")]
    fn duplicate_names_rejected() {
        let mut w = small_wan();
        w.add_datacenter(dc("us-e1", Continent::Europe, 9, 0.0, 0.0));
    }

    #[test]
    fn haversine_matches_known_distance() {
        // Washington DC area to Dublin is ~5,400-5,600 km.
        let d = haversine_km(39.0, -77.5, 53.3, -6.3);
        assert!((5200.0..5900.0).contains(&d), "got {d}");
    }

    #[test]
    fn region_contraction_merges_parallel_links() {
        let w = small_wan();
        let c = w.contract_by_region();
        // Regions: na-r0 (us-e1, us-e2), na-r1 (us-w1), eu-r0 (eu-w1).
        assert_eq!(c.graph.node_count(), 3);
        let na0 = c
            .graph
            .nodes()
            .find(|(_, n)| n.name == "na-r0")
            .map(|(id, _)| id)
            .expect("na-r0 exists");
        assert_eq!(c.graph.node(na0).dc_count, 2);
        let na1 = c.graph.nodes().find(|(_, n)| n.name == "na-r1").map(|(id, _)| id).unwrap();
        // us-e1->us-w1 (800) and us-e2->us-w1 (400) merge to 1200.
        let e = c.graph.find_edge(na0, na1).unwrap();
        let link = &c.graph.edge(e).payload;
        assert_eq!(link.capacity_gbps, 1200.0);
        assert_eq!(link.member_links, 2);
        assert!(!link.any_subsea);
    }

    #[test]
    fn continent_contraction_gives_two_nodes_here() {
        let w = small_wan();
        let c = w.contract_by_continent();
        assert_eq!(c.graph.node_count(), 2);
        // Only inter-continent edges survive: us-e1<->eu-w1.
        assert_eq!(c.graph.edge_count(), 2);
        let (_, edge) = c.graph.edges().next().unwrap();
        assert!(edge.payload.any_subsea);
    }

    #[test]
    fn down_links_excluded_from_coarse_capacity() {
        let mut w = small_wan();
        // Take down us-e1 -> us-w1 (800 Gbps).
        let a = w.dc_by_name("us-e1").unwrap();
        let cdc = w.dc_by_name("us-w1").unwrap();
        let e = w.graph.find_edge(a, cdc).unwrap();
        w.set_link_up(e, false);
        let c = w.contract_by_region();
        let na0 = c.graph.nodes().find(|(_, n)| n.name == "na-r0").map(|(id, _)| id).unwrap();
        let na1 = c.graph.nodes().find(|(_, n)| n.name == "na-r1").map(|(id, _)| id).unwrap();
        let link = &c.graph.edge(c.graph.find_edge(na0, na1).unwrap()).payload;
        assert_eq!(link.capacity_gbps, 400.0);
        assert_eq!(link.member_links, 2); // still counted as a member
    }

    #[test]
    fn custom_label_contraction() {
        let w = small_wan();
        let c = w.contract_by_label(|_, dc| {
            if dc.name.starts_with("us") {
                "us".into()
            } else {
                "other".into()
            }
        });
        assert_eq!(c.graph.node_count(), 2);
    }

    #[test]
    fn geo_clustering_is_deterministic_and_spatial() {
        let w = small_wan();
        let a = w.contract_by_geo_clusters(2, 3);
        let b = w.contract_by_geo_clusters(2, 3);
        assert_eq!(a.node_map, b.node_map);
        assert!(a.graph.node_count() <= 2);
        // The two US east-coast DCs (us-e1, us-e2) are ~300 km apart and
        // must share a cluster when Europe is 5000+ km away.
        let e1 = w.dc_by_name("us-e1").unwrap();
        let e2 = w.dc_by_name("us-e2").unwrap();
        assert_eq!(a.node_map[e1.index()], a.node_map[e2.index()]);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn geo_clustering_rejects_bad_k() {
        let _ = small_wan().contract_by_geo_clusters(0, 1);
    }

    #[test]
    fn regions_enumerated_in_node_order() {
        let w = small_wan();
        let regions = w.regions();
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0], (Continent::NorthAmerica, RegionId(0)));
    }
}
