//! Property-based tests of the graph algorithms on random graphs.

use proptest::prelude::*;
use smn_topology::graph::{DiGraph, NodeId};

/// Random graph: n nodes, edges as (src, dst, weight) triples.
fn graph_strategy() -> impl Strategy<Value = DiGraph<(), f64>> {
    (2usize..12, proptest::collection::vec((0usize..12, 0usize..12, 0.1f64..100.0), 1..40))
        .prop_map(|(n, edges)| {
            let mut g = DiGraph::new();
            for _ in 0..n {
                g.add_node(());
            }
            for (s, d, w) in edges {
                let (s, d) = (s % n, d % n);
                g.add_edge(NodeId(s as u32), NodeId(d as u32), w);
            }
            g
        })
}

proptest! {
    /// Dijkstra's result is a valid, correctly-priced path, and no single
    /// edge beats it.
    #[test]
    fn shortest_path_is_valid_and_minimal(g in graph_strategy()) {
        let src = NodeId(0);
        let dst = NodeId((g.node_count() - 1) as u32);
        if let Some(p) = g.shortest_path(src, dst, |_, e| Some(e.payload)) {
            prop_assert_eq!(p.nodes.first(), Some(&src));
            prop_assert_eq!(p.nodes.last(), Some(&dst));
            // Edges chain and cost adds up.
            let mut cost = 0.0;
            for (i, &e) in p.edges.iter().enumerate() {
                let (a, b) = g.endpoints(e);
                prop_assert_eq!(a, p.nodes[i]);
                prop_assert_eq!(b, p.nodes[i + 1]);
                cost += g.edge(e).payload;
            }
            prop_assert!((cost - p.cost).abs() < 1e-9);
            // No direct edge is cheaper.
            for (_, e) in g.edges() {
                if e.src == src && e.dst == dst {
                    prop_assert!(e.payload + 1e-9 >= p.cost);
                }
            }
        }
    }

    /// Yen's paths are sorted by cost, loopless, and pairwise distinct.
    #[test]
    fn k_shortest_paths_sorted_and_distinct(g in graph_strategy()) {
        let src = NodeId(0);
        let dst = NodeId((g.node_count() - 1) as u32);
        let paths = g.k_shortest_paths(src, dst, 4, |_, e| Some(e.payload));
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9);
            prop_assert_ne!(&w[0].edges, &w[1].edges);
        }
        for p in &paths {
            let set: std::collections::HashSet<_> = p.nodes.iter().collect();
            prop_assert_eq!(set.len(), p.nodes.len(), "loop in path");
        }
    }

    /// Reachability is reflexive and transitive-consistent with BFS hops.
    #[test]
    fn reachability_consistent_with_bfs(g in graph_strategy()) {
        let start = NodeId(0);
        let reach = g.reachable_from(start);
        let hops = g.bfs_hops(start);
        prop_assert!(reach.contains(&start));
        for n in g.node_ids() {
            prop_assert_eq!(reach.contains(&n), hops.contains_key(&n));
        }
    }

    /// Weakly connected components: every edge's endpoints share one.
    #[test]
    fn components_respect_edges(g in graph_strategy()) {
        let (comp, n) = g.weakly_connected_components();
        prop_assert!(n >= 1);
        for (_, e) in g.edges() {
            prop_assert_eq!(comp[e.src.index()], comp[e.dst.index()]);
        }
    }
}
