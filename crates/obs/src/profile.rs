//! Wall-time self-profiler: hierarchical phase accumulation keyed by
//! span-tree path.
//!
//! [`crate::Obs::phase`] opens a [`PhaseGuard`] — an RAII guard that (a)
//! opens a regular sim-time trace span under the same name, so wall-time
//! profiles and deterministic traces share one tree, and (b) measures the
//! guarded region's wall time, folding it into a per-path accumulator on
//! drop. Paths are the `;`-joined stack of open phase names (the folded-
//! stack convention flamegraph tooling expects), so `perf/te;gk/pack` is
//! the `gk/pack` phase observed inside `perf/te`.
//!
//! **Determinism discipline.** This is the *only* module in `smn-obs`
//! that touches the wall clock, and the wall readings never enter the
//! trace, metrics, or audit exports — those stay byte-identical across
//! runs. Wall totals live in their own registry, exported only through
//! [`crate::Obs::wall_profile`] / [`crate::Obs::wall_profile_folded`],
//! and the `BenchReport` consumers treat them as lenient trend data,
//! never as gated values. The accumulator itself
//! ([`crate::Obs::record_phase_ns`]) is pure, so tests feed it synthetic
//! durations deterministically.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::{Obs, Span};

/// Separator between nested phase names in an accumulated path.
pub const PATH_SEP: char = ';';

/// Accumulated wall totals for one span-tree path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotal {
    /// Number of completed guards on this path.
    pub count: u64,
    /// Total wall nanoseconds across all of them.
    pub total_ns: u64,
    /// Worst single observation in nanoseconds.
    pub max_ns: u64,
}

/// One exported row of the wall profile (milliseconds, ready for a
/// `BenchReport` phase entry).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// `;`-joined span-tree path.
    pub path: String,
    /// Completed guard count.
    pub count: u64,
    /// Total wall milliseconds.
    pub total_ms: f64,
    /// Mean wall milliseconds per guard.
    pub mean_ms: f64,
    /// Worst single guard in milliseconds.
    pub worst_ms: f64,
}

/// Profiler state behind the [`Obs`] handle: the open-phase stack plus
/// the per-path totals. `BTreeMap` keeps every export path-sorted.
#[derive(Debug, Default)]
pub struct ProfileState {
    stack: Vec<String>,
    totals: BTreeMap<String, PhaseTotal>,
}

impl ProfileState {
    /// Push `name` onto the open-phase stack and return the joined path.
    pub fn push(&mut self, name: &str) -> String {
        self.stack.push(name.to_string());
        self.stack.join(&PATH_SEP.to_string())
    }

    /// Pop the innermost open phase.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// Fold one observation into the totals.
    pub fn record(&mut self, path: &str, ns: u64) {
        let t = self.totals.entry(path.to_string()).or_default();
        t.count += 1;
        t.total_ns = t.total_ns.saturating_add(ns);
        t.max_ns = t.max_ns.max(ns);
    }

    /// Export the totals as path-sorted [`PhaseStat`] rows.
    #[must_use]
    pub fn stats(&self) -> Vec<PhaseStat> {
        const NS_PER_MS: f64 = 1e6;
        self.totals
            .iter()
            .map(|(path, t)| {
                #[allow(clippy::cast_precision_loss)] // wall totals stay far below 2^52 ns
                let total_ms = t.total_ns as f64 / NS_PER_MS;
                #[allow(clippy::cast_precision_loss)]
                let mean_ms = if t.count == 0 { 0.0 } else { total_ms / t.count as f64 };
                #[allow(clippy::cast_precision_loss)]
                let worst_ms = t.max_ns as f64 / NS_PER_MS;
                PhaseStat { path: path.clone(), count: t.count, total_ms, mean_ms, worst_ms }
            })
            .collect()
    }

    /// Export as folded-stack text (`path total_us` per line, path-sorted)
    /// — the input format of standard flamegraph tooling.
    #[must_use]
    pub fn folded(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (path, t) in &self.totals {
            let us = t.total_ns / 1_000;
            let _ = writeln!(out, "{path} {us}");
        }
        out
    }
}

/// An open profiled phase: a trace span plus a wall-time measurement,
/// both closed on drop. From a disabled [`Obs`] handle the guard is a
/// no-op that never reads the clock.
pub struct PhaseGuard<'a> {
    span: Span<'a>,
    obs: Option<&'a Obs>,
    path: String,
    start: Option<Instant>,
}

/// Open a phase guard on `obs` (the body of [`Obs::phase`]).
pub(crate) fn begin<'a>(obs: &'a Obs, name: &str) -> PhaseGuard<'a> {
    let span = obs.span(name);
    if !obs.is_enabled() {
        return PhaseGuard { span, obs: None, path: String::new(), start: None };
    }
    let path = obs.profile.lock().push(name);
    // smn-lint: allow(determinism/wall-clock) -- the profiler's sole wall read; totals never enter deterministic exports
    let start = Instant::now();
    PhaseGuard { span, obs: Some(obs), path, start: Some(start) }
}

impl PhaseGuard<'_> {
    /// Attach a field to the underlying trace span's exit event.
    pub fn field(&mut self, key: &str, value: impl Into<crate::trace::FieldValue>) {
        self.span.field(key, value);
    }

    /// The wall-profile path this guard accumulates under (empty for
    /// guards from a disabled handle).
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let (Some(obs), Some(start)) = (self.obs, self.start.take()) {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut p = obs.profile.lock();
            p.pop();
            ProfileState::record(&mut p, &self.path, ns);
        }
        // `self.span` drops afterwards, emitting the trace exit event.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_accumulator_aggregates_per_path() {
        let mut st = ProfileState::default();
        st.record("a", 1_000_000);
        st.record("a;b", 250_000);
        st.record("a", 3_000_000);
        let stats = st.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].path, "a");
        assert_eq!(stats[0].count, 2);
        assert!((stats[0].total_ms - 4.0).abs() < 1e-9);
        assert!((stats[0].mean_ms - 2.0).abs() < 1e-9);
        assert!((stats[0].worst_ms - 3.0).abs() < 1e-9);
        assert_eq!(stats[1].path, "a;b");
        assert_eq!(st.folded(), "a 4000\na;b 250\n");
    }

    #[test]
    fn stack_builds_folded_paths() {
        let mut st = ProfileState::default();
        assert_eq!(st.push("outer"), "outer");
        assert_eq!(st.push("inner"), "outer;inner");
        st.pop();
        assert_eq!(st.push("sibling"), "outer;sibling");
    }

    #[test]
    fn guards_nest_and_share_the_trace_tree() {
        let obs = Obs::enabled(crate::clock::SimClock::new());
        {
            let mut outer = obs.phase("perf/outer");
            assert_eq!(outer.path(), "perf/outer");
            {
                let inner = obs.phase("inner");
                assert_eq!(inner.path(), "perf/outer;inner");
            }
            outer.field("n", 1u64);
        }
        let stats = obs.wall_profile();
        let paths: Vec<&str> = stats.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["perf/outer", "perf/outer;inner"]);
        assert!(stats.iter().all(|s| s.count == 1));
        // The same names appear as spans in the deterministic trace.
        let trace = obs.trace_jsonl();
        assert!(trace.contains("perf/outer"));
        assert!(trace.contains("\"inner\""));
    }

    #[test]
    fn disabled_handle_never_records() {
        let obs = Obs::disabled();
        {
            let g = obs.phase("nope");
            assert_eq!(g.path(), "");
        }
        assert!(obs.wall_profile().is_empty());
        assert!(obs.wall_profile_folded().is_empty());
    }

    #[test]
    fn record_phase_ns_is_the_testable_front_door() {
        let obs = Obs::enabled(crate::clock::SimClock::new());
        obs.record_phase_ns("x;y", 2_000_000);
        obs.record_phase_ns("x;y", 4_000_000);
        let stats = obs.wall_profile();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].count, 2);
        assert!((stats[0].total_ms - 6.0).abs() < 1e-9);
    }
}
