//! Trace summarization: turn a JSONL trace back into a span tree.
//!
//! This is the read side of [`crate::trace`]: `smn obs summarize` feeds a
//! trace file through [`TraceSummary::parse`] and renders either a human
//! summary (aggregated span tree with durations, top-N slowest spans) or a
//! JSON report. Malformed lines are collected as parse errors rather than
//! aborting — CI gates on the error count, so a truncated or corrupt trace
//! artifact fails loudly with line numbers.

use std::collections::BTreeMap;

use serde::Value;

use crate::trace::{EventKind, TraceEvent};

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span id from the trace.
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Sim-seconds at enter.
    pub start_ts: u64,
    /// Sim-seconds at exit (`None` while the span never closed).
    pub end_ts: Option<u64>,
    /// Wall-clock milliseconds, when the exit event carried a `wall_ms`
    /// field (bench binaries attach one from `smn_bench::timer`).
    pub wall_ms: Option<f64>,
    /// Point events emitted inside this span.
    pub events: usize,
    /// Child span ids, in open order.
    pub children: Vec<u64>,
}

impl SpanNode {
    /// Simulated duration in seconds (`None` while open).
    #[must_use]
    pub fn sim_secs(&self) -> Option<u64> {
        self.end_ts.map(|end| end.saturating_sub(self.start_ts))
    }

    /// The duration used for slowest-span ranking: wall-clock ms when
    /// recorded, otherwise simulated seconds promoted to a comparable
    /// float (sim time ranks below any wall measurement of equal value
    /// only by convention — traces mix the two rarely).
    #[allow(clippy::cast_precision_loss)] // sim durations stay far below 2^52
    fn rank_key(&self) -> f64 {
        self.wall_ms.or_else(|| self.sim_secs().map(|s| s as f64)).unwrap_or(0.0)
    }
}

/// Aggregate of all spans sharing a name under the same parent aggregate.
#[derive(Debug, Clone)]
pub struct SpanAggregate {
    /// Span name.
    pub name: String,
    /// How many spans folded into this node.
    pub count: usize,
    /// Total simulated seconds across closed spans.
    pub sim_secs: u64,
    /// Total wall milliseconds across spans that recorded one.
    pub wall_ms: f64,
    /// Whether any span recorded a `wall_ms`.
    pub has_wall: bool,
    /// Point events inside these spans.
    pub events: usize,
    /// Child aggregates, ordered by first appearance.
    pub children: Vec<SpanAggregate>,
}

/// A fully parsed trace.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Lines seen (blank lines skipped).
    pub total_lines: usize,
    /// `(1-based line number, message)` for every malformed line.
    pub parse_errors: Vec<(usize, String)>,
    /// Events parsed successfully.
    pub events: usize,
    /// Point events (kind `event`).
    pub point_events: usize,
    /// Spans by id.
    pub spans: BTreeMap<u64, SpanNode>,
    /// Root span ids, in open order.
    pub roots: Vec<u64>,
}

impl TraceSummary {
    /// Parse a JSONL trace. Never fails: malformed lines land in
    /// [`TraceSummary::parse_errors`].
    #[must_use]
    pub fn parse(jsonl: &str) -> TraceSummary {
        let mut s = TraceSummary::default();
        for (i, line) in jsonl.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            s.total_lines += 1;
            match TraceEvent::from_json_line(line) {
                Ok(ev) => s.apply(&ev),
                Err(e) => s.parse_errors.push((i + 1, e)),
            }
        }
        s
    }

    fn apply(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match ev.kind {
            EventKind::Enter => {
                let node = SpanNode {
                    span: ev.span,
                    parent: ev.parent,
                    name: ev.name.clone(),
                    start_ts: ev.ts,
                    end_ts: None,
                    wall_ms: None,
                    events: 0,
                    children: Vec::new(),
                };
                if ev.parent != 0 {
                    if let Some(p) = self.spans.get_mut(&ev.parent) {
                        p.children.push(ev.span);
                    }
                } else {
                    self.roots.push(ev.span);
                }
                self.spans.insert(ev.span, node);
            }
            EventKind::Exit => {
                if let Some(node) = self.spans.get_mut(&ev.span) {
                    node.end_ts = Some(ev.ts);
                    node.wall_ms = ev
                        .fields
                        .iter()
                        .find(|(k, _)| k == "wall_ms")
                        .and_then(|(_, v)| v.as_f64());
                }
            }
            EventKind::Point => {
                self.point_events += 1;
                if let Some(node) = self.spans.get_mut(&ev.span) {
                    node.events += 1;
                }
            }
        }
    }

    /// Spans that never saw an exit event.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.spans.values().filter(|s| s.end_ts.is_none()).count()
    }

    /// The `n` slowest spans, by wall-clock ms when recorded, else by
    /// simulated duration. Ties break by span id for determinism.
    #[must_use]
    pub fn slowest(&self, n: usize) -> Vec<&SpanNode> {
        let mut all: Vec<&SpanNode> = self.spans.values().collect();
        all.sort_by(|a, b| b.rank_key().total_cmp(&a.rank_key()).then_with(|| a.span.cmp(&b.span)));
        all.truncate(n);
        all
    }

    /// Fold the span tree into per-name aggregates (children grouped by
    /// name under their parent's aggregate, ordered by first appearance).
    #[must_use]
    pub fn aggregate(&self) -> Vec<SpanAggregate> {
        self.aggregate_children(&self.roots)
    }

    fn aggregate_children(&self, ids: &[u64]) -> Vec<SpanAggregate> {
        let mut order: Vec<String> = Vec::new();
        let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for &id in ids {
            if let Some(node) = self.spans.get(&id) {
                if !groups.contains_key(&node.name) {
                    order.push(node.name.clone());
                }
                groups.entry(node.name.clone()).or_default().push(id);
            }
        }
        let mut out = Vec::new();
        for name in order {
            let ids = groups.get(&name).cloned().unwrap_or_default();
            let mut agg = SpanAggregate {
                name,
                count: ids.len(),
                sim_secs: 0,
                wall_ms: 0.0,
                has_wall: false,
                events: 0,
                children: Vec::new(),
            };
            let mut child_ids: Vec<u64> = Vec::new();
            for id in &ids {
                if let Some(node) = self.spans.get(id) {
                    agg.sim_secs += node.sim_secs().unwrap_or(0);
                    if let Some(w) = node.wall_ms {
                        agg.wall_ms += w;
                        agg.has_wall = true;
                    }
                    agg.events += node.events;
                    child_ids.extend(node.children.iter().copied());
                }
            }
            agg.children = self.aggregate_children(&child_ids);
            out.push(agg);
        }
        out
    }

    /// Human-readable summary: header, aggregated span tree, top-`top`
    /// slowest spans, and any parse errors.
    #[must_use]
    pub fn render_text(&self, top: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events ({} spans, {} points), {} open, {} parse errors",
            self.events,
            self.spans.len(),
            self.point_events,
            self.open_spans(),
            self.parse_errors.len(),
        );
        out.push_str("\nspan tree:\n");
        let aggs = self.aggregate();
        if aggs.is_empty() {
            out.push_str("  (no spans)\n");
        }
        for agg in &aggs {
            render_aggregate(&mut out, agg, 1);
        }
        let slowest = self.slowest(top);
        if !slowest.is_empty() {
            let _ = writeln!(out, "\nslowest {} spans:", slowest.len());
            for node in slowest {
                let dur = match (node.wall_ms, node.sim_secs()) {
                    (Some(w), _) => format!("{w:.3}ms wall"),
                    (None, Some(s)) => format!("{s}s sim"),
                    (None, None) => "open".to_string(),
                };
                let _ = writeln!(out, "  #{:<6} {:<40} {}", node.span, node.name, dur);
            }
        }
        if !self.parse_errors.is_empty() {
            out.push_str("\nparse errors:\n");
            for (line, msg) in &self.parse_errors {
                let _ = writeln!(out, "  line {line}: {msg}");
            }
        }
        out
    }

    /// Machine-readable summary mirroring [`TraceSummary::render_text`].
    #[must_use]
    pub fn to_json(&self, top: usize) -> String {
        let aggs: Vec<Value> = self.aggregate().iter().map(aggregate_to_value).collect();
        let slowest: Vec<Value> = self
            .slowest(top)
            .iter()
            .map(|n| {
                let mut m = vec![
                    ("span".to_string(), Value::U64(n.span)),
                    ("name".to_string(), Value::Str(n.name.clone())),
                ];
                match n.sim_secs() {
                    Some(s) => m.push(("sim_secs".to_string(), Value::U64(s))),
                    None => m.push(("sim_secs".to_string(), Value::Null)),
                }
                match n.wall_ms {
                    Some(w) => m.push(("wall_ms".to_string(), Value::F64(w))),
                    None => m.push(("wall_ms".to_string(), Value::Null)),
                }
                Value::Map(m)
            })
            .collect();
        let errors: Vec<Value> = self
            .parse_errors
            .iter()
            .map(|(line, msg)| {
                Value::Map(vec![
                    ("line".to_string(), Value::U64(*line as u64)),
                    ("error".to_string(), Value::Str(msg.clone())),
                ])
            })
            .collect();
        let root = Value::Map(vec![
            ("events".to_string(), Value::U64(self.events as u64)),
            ("spans".to_string(), Value::U64(self.spans.len() as u64)),
            ("points".to_string(), Value::U64(self.point_events as u64)),
            ("open_spans".to_string(), Value::U64(self.open_spans() as u64)),
            ("parse_errors".to_string(), Value::U64(self.parse_errors.len() as u64)),
            ("tree".to_string(), Value::Seq(aggs)),
            ("slowest".to_string(), Value::Seq(slowest)),
            ("errors".to_string(), Value::Seq(errors)),
        ]);
        serde_json::to_string_pretty(&root).unwrap_or_default()
    }
}

fn render_aggregate(out: &mut String, agg: &SpanAggregate, depth: usize) {
    use std::fmt::Write;
    let indent = "  ".repeat(depth);
    let mut stats = format!("x{}", agg.count);
    if agg.has_wall {
        let _ = write!(stats, "  {:.3}ms wall", agg.wall_ms);
    }
    if agg.sim_secs > 0 {
        let _ = write!(stats, "  {}s sim", agg.sim_secs);
    }
    if agg.events > 0 {
        let _ = write!(stats, "  {} events", agg.events);
    }
    let _ = writeln!(out, "{indent}{:<40} {stats}", agg.name);
    for child in &agg.children {
        render_aggregate(out, child, depth + 1);
    }
}

fn aggregate_to_value(agg: &SpanAggregate) -> Value {
    let children: Vec<Value> = agg.children.iter().map(aggregate_to_value).collect();
    Value::Map(vec![
        ("name".to_string(), Value::Str(agg.name.clone())),
        ("count".to_string(), Value::U64(agg.count as u64)),
        ("sim_secs".to_string(), Value::U64(agg.sim_secs)),
        ("wall_ms".to_string(), if agg.has_wall { Value::F64(agg.wall_ms) } else { Value::Null }),
        ("events".to_string(), Value::U64(agg.events as u64)),
        ("children".to_string(), Value::Seq(children)),
    ])
}

#[cfg(test)]
#[allow(clippy::cast_precision_loss)] // small literal loop indices
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::trace::FieldValue;
    use crate::Obs;

    fn sample_trace() -> String {
        let clock = SimClock::new();
        let obs = Obs::enabled(clock.clone());
        for w in 0..3u64 {
            clock.set(w * 3600);
            let mut outer = obs.span_with("window", &[("w", FieldValue::U64(w))]);
            {
                clock.advance(60);
                let mut inner = obs.span("coarsen");
                clock.advance(120);
                inner.field("wall_ms", 1.5 + w as f64);
            }
            obs.event("routed", &[("team", FieldValue::Str("net".into()))]);
            clock.advance(600);
            outer.field("ok", true);
        }
        obs.trace_jsonl()
    }

    #[test]
    fn parses_and_aggregates_span_tree() {
        let s = TraceSummary::parse(&sample_trace());
        assert_eq!(s.parse_errors.len(), 0);
        assert_eq!(s.spans.len(), 6);
        assert_eq!(s.point_events, 3);
        assert_eq!(s.open_spans(), 0);
        let aggs = s.aggregate();
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].name, "window");
        assert_eq!(aggs[0].count, 3);
        assert_eq!(aggs[0].children[0].name, "coarsen");
        assert_eq!(aggs[0].children[0].count, 3);
        assert!(aggs[0].children[0].has_wall);
    }

    #[test]
    fn slowest_prefers_wall_ms() {
        let s = TraceSummary::parse(&sample_trace());
        let slow = s.slowest(2);
        assert_eq!(slow.len(), 2);
        // Outer windows have sim duration 780s but no wall_ms; the ranking
        // is by rank_key, so 780 (sim) outranks 3.5ms (wall) numerically.
        assert!(slow[0].rank_key() >= slow[1].rank_key());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let mut jsonl = sample_trace();
        jsonl.push_str("garbage line\n");
        let s = TraceSummary::parse(&jsonl);
        assert_eq!(s.parse_errors.len(), 1);
        assert_eq!(s.parse_errors[0].0, jsonl.lines().count());
        let text = s.render_text(5);
        assert!(text.contains("parse errors"));
        assert!(text.contains("garbage") || text.contains("line"));
    }

    #[test]
    fn json_summary_is_deterministic() {
        let s = TraceSummary::parse(&sample_trace());
        assert_eq!(s.to_json(3), s.to_json(3));
        assert!(s.to_json(3).contains("\"spans\": 6"));
    }
}
