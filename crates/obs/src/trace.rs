//! Span-based structured tracing with JSONL export.
//!
//! A trace is an ordered stream of [`TraceEvent`]s: span enters, span
//! exits, and point events, each stamped with a sequence number and the
//! [`crate::clock::Clock`] time at emission. Spans nest through an explicit
//! parent stack (the SMN pipelines are single-threaded per campaign), so a
//! trace reconstructs into a span tree without any thread-local magic.
//!
//! The export format is one JSON object per line. Field order is fixed by
//! construction (the vendored `serde::Value` map preserves insertion
//! order), so identical event streams serialize to byte-identical JSONL —
//! the property the determinism regression test locks in.

use serde::Value;

/// A typed key-value field attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(n) => Value::U64(*n),
            FieldValue::I64(n) => Value::I64(*n),
            FieldValue::F64(f) => Value::F64(*f),
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }

    fn from_value(v: &Value) -> Option<FieldValue> {
        match v {
            Value::U64(n) => Some(FieldValue::U64(*n)),
            Value::I64(n) => Some(FieldValue::I64(*n)),
            Value::F64(f) => Some(FieldValue::F64(*f)),
            Value::Bool(b) => Some(FieldValue::Bool(*b)),
            Value::Str(s) => Some(FieldValue::Str(s.clone())),
            Value::Null | Value::Seq(_) | Value::Map(_) => None,
        }
    }

    /// Render for human-readable summaries.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            FieldValue::U64(n) => n.to_string(),
            FieldValue::I64(n) => n.to_string(),
            FieldValue::F64(f) => format!("{f}"),
            FieldValue::Bool(b) => b.to_string(),
            FieldValue::Str(s) => s.clone(),
        }
    }

    /// The float value, if this field is numeric.
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // trace field magnitudes stay far below 2^52
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(n) => Some(*n as f64),
            FieldValue::I64(n) => Some(*n as f64),
            FieldValue::F64(f) => Some(*f),
            FieldValue::Bool(_) | FieldValue::Str(_) => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(n: u64) -> Self {
        FieldValue::U64(n)
    }
}
impl From<usize> for FieldValue {
    fn from(n: usize) -> Self {
        FieldValue::U64(n as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(n: i64) -> Self {
        FieldValue::I64(n)
    }
}
impl From<f64> for FieldValue {
    fn from(f: f64) -> Self {
        FieldValue::F64(f)
    }
}
impl From<bool> for FieldValue {
    fn from(b: bool) -> Self {
        FieldValue::Bool(b)
    }
}
impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}

/// What a trace event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Enter,
    /// A span closed.
    Exit,
    /// A point-in-time event inside the current span.
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Point => "event",
        }
    }

    fn parse(s: &str) -> Option<EventKind> {
        match s {
            "enter" => Some(EventKind::Enter),
            "exit" => Some(EventKind::Exit),
            "event" => Some(EventKind::Point),
            _ => None,
        }
    }
}

/// One line of a trace: a span boundary or a point event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emission order, 1-based, dense.
    pub seq: u64,
    /// Simulated seconds at emission.
    pub ts: u64,
    /// Enter / exit / point.
    pub kind: EventKind,
    /// Id of the span this event belongs to (the span itself for
    /// enter/exit, the enclosing span for point events; 0 = no span).
    pub span: u64,
    /// Id of the enclosing span at enter time (0 = root).
    pub parent: u64,
    /// Span or event name, e.g. `"controller/incident-loop"`.
    pub name: String,
    /// Typed payload fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// Serialize as one compact JSON line (no trailing newline). Field
    /// order is fixed, so equal events yield equal bytes.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let fields: Vec<(String, Value)> =
            self.fields.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        let map = Value::Map(vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("ts".to_string(), Value::U64(self.ts)),
            ("kind".to_string(), Value::Str(self.kind.as_str().to_string())),
            ("span".to_string(), Value::U64(self.span)),
            ("parent".to_string(), Value::U64(self.parent)),
            ("name".to_string(), Value::Str(self.name.clone())),
            ("fields".to_string(), Value::Map(fields)),
        ]);
        serde_json::to_string(&map).unwrap_or_default()
    }

    /// Parse one JSONL line back into an event.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line — bad JSON, a missing
    /// or mistyped field, an unknown kind — which the summarizer surfaces
    /// instead of panicking.
    pub fn from_json_line(line: &str) -> Result<TraceEvent, String> {
        let v = serde_json::parse_value(line).map_err(|e| e.to_string())?;
        let u64_of = |key: &str| -> Result<u64, String> {
            match v.get(key) {
                Some(Value::U64(n)) => Ok(*n),
                Some(other) => Err(format!("field '{key}' is not an unsigned integer: {other:?}")),
                None => Err(format!("missing field '{key}'")),
            }
        };
        let str_of = |key: &str| -> Result<String, String> {
            match v.get(key) {
                Some(Value::Str(s)) => Ok(s.clone()),
                Some(other) => Err(format!("field '{key}' is not a string: {other:?}")),
                None => Err(format!("missing field '{key}'")),
            }
        };
        let kind_str = str_of("kind")?;
        let kind = EventKind::parse(&kind_str)
            .ok_or_else(|| format!("unknown event kind '{kind_str}'"))?;
        let mut fields = Vec::new();
        match v.get("fields") {
            Some(Value::Map(entries)) => {
                for (k, fv) in entries {
                    let fv = FieldValue::from_value(fv)
                        .ok_or_else(|| format!("field '{k}' has a non-scalar value"))?;
                    fields.push((k.clone(), fv));
                }
            }
            Some(other) => return Err(format!("'fields' is not an object: {other:?}")),
            None => return Err("missing field 'fields'".to_string()),
        }
        Ok(TraceEvent {
            seq: u64_of("seq")?,
            ts: u64_of("ts")?,
            kind,
            span: u64_of("span")?,
            parent: u64_of("parent")?,
            name: str_of("name")?,
            fields,
        })
    }
}

/// Mutable tracer state behind the [`crate::Obs`] lock.
#[derive(Debug, Default)]
pub(crate) struct TracerState {
    /// The recorded event stream.
    pub events: Vec<TraceEvent>,
    /// Next sequence number (1-based).
    next_seq: u64,
    /// Next span id (1-based).
    next_span: u64,
    /// Stack of currently open span ids.
    stack: Vec<u64>,
}

impl TracerState {
    fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Open a span: emit the enter event and push it on the stack.
    pub fn enter(&mut self, ts: u64, name: &str, fields: Vec<(String, FieldValue)>) -> u64 {
        self.next_span += 1;
        let span = self.next_span;
        let parent = self.stack.last().copied().unwrap_or(0);
        let seq = self.next_seq();
        self.events.push(TraceEvent {
            seq,
            ts,
            kind: EventKind::Enter,
            span,
            parent,
            name: name.to_string(),
            fields,
        });
        self.stack.push(span);
        span
    }

    /// Close a span: emit the exit event and pop it (plus anything opened
    /// after it and leaked — guards drop in LIFO order, so under normal use
    /// the span is the stack top).
    pub fn exit(&mut self, ts: u64, span: u64, name: &str, fields: Vec<(String, FieldValue)>) {
        if let Some(pos) = self.stack.iter().rposition(|&s| s == span) {
            self.stack.truncate(pos);
        }
        let parent = self.stack.last().copied().unwrap_or(0);
        let seq = self.next_seq();
        self.events.push(TraceEvent {
            seq,
            ts,
            kind: EventKind::Exit,
            span,
            parent,
            name: name.to_string(),
            fields,
        });
    }

    /// Emit a point event inside the currently open span.
    pub fn point(&mut self, ts: u64, name: &str, fields: Vec<(String, FieldValue)>) {
        let span = self.stack.last().copied().unwrap_or(0);
        let seq = self.next_seq();
        self.events.push(TraceEvent {
            seq,
            ts,
            kind: EventKind::Point,
            span,
            parent: span,
            name: name.to_string(),
            fields,
        });
    }

    /// Export the whole stream as JSONL (one event per line, trailing
    /// newline after the last line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_roundtrip() {
        let mut t = TracerState::default();
        let outer = t.enter(0, "outer", vec![("window".to_string(), FieldValue::U64(1))]);
        let inner = t.enter(5, "inner", vec![]);
        t.point(6, "checkpoint", vec![("ok".to_string(), FieldValue::Bool(true))]);
        t.exit(9, inner, "inner", vec![]);
        t.exit(10, outer, "outer", vec![("n".to_string(), FieldValue::U64(2))]);

        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        let parsed: Vec<TraceEvent> =
            lines.iter().map(|l| TraceEvent::from_json_line(l).unwrap()).collect();
        assert_eq!(parsed, t.events);
        assert_eq!(parsed[1].parent, outer);
        assert_eq!(parsed[2].kind, EventKind::Point);
        assert_eq!(parsed[2].span, inner);
        assert_eq!(parsed[4].fields[0].0, "n");
    }

    #[test]
    fn identical_streams_serialize_identically() {
        let build = || {
            let mut t = TracerState::default();
            let s = t.enter(100, "loop", vec![("f".to_string(), FieldValue::F64(0.25))]);
            t.exit(160, s, "loop", vec![]);
            t.to_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn malformed_lines_error_instead_of_panicking() {
        assert!(TraceEvent::from_json_line("not json").is_err());
        assert!(TraceEvent::from_json_line("{}").is_err());
        assert!(TraceEvent::from_json_line(
            r#"{"seq":1,"ts":0,"kind":"bogus","span":1,"parent":0,"name":"x","fields":{}}"#
        )
        .is_err());
    }

    #[test]
    fn leaked_inner_span_does_not_corrupt_stack() {
        let mut t = TracerState::default();
        let outer = t.enter(0, "outer", vec![]);
        let _inner = t.enter(1, "inner", vec![]); // never exited explicitly
        t.exit(2, outer, "outer", vec![]);
        // The stack is empty again: a new root span has parent 0.
        let fresh = t.enter(3, "fresh", vec![]);
        let enter = t.events.iter().find(|e| e.span == fresh).unwrap();
        assert_eq!(enter.parent, 0);
    }
}
