//! Time sources for observability events.
//!
//! Every timestamp an [`crate::Obs`] emits comes through the [`Clock`]
//! trait, and the only implementation in the workspace is simulation time:
//! a [`SimClock`] the driving loop advances explicitly. No implementation
//! reads the wall clock, which is what makes two identically seeded runs
//! produce byte-identical traces (the `determinism/wall-clock` invariant of
//! `smn-lint`). Benchmark binaries that want real latencies measure them
//! with `smn_bench::timer` — the workspace's single audited wall-clock
//! read — and feed the measured milliseconds into histograms as *values*,
//! never as event timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A source of observability timestamps, in simulated seconds.
pub trait Clock: Send + Sync {
    /// The current time in simulated seconds since campaign start.
    fn now(&self) -> u64;
}

/// Simulation-time clock: holds whatever the driving loop last set.
///
/// Shared by `Arc` between the driver (which calls [`SimClock::set`] at
/// each window boundary) and the [`crate::Obs`] handle reading it.
#[derive(Debug, Default)]
pub struct SimClock(AtomicU64);

impl SimClock {
    /// A clock at simulated second zero.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A clock starting at `start_secs`.
    #[must_use]
    pub fn starting_at(start_secs: u64) -> Arc<Self> {
        Arc::new(SimClock(AtomicU64::new(start_secs)))
    }

    /// Move the clock to `now_secs`. Monotonicity is the caller's contract;
    /// the clock itself just stores the value (replays may legitimately
    /// rewind between campaign runs).
    pub fn set(&self, now_secs: u64) {
        self.0.store(now_secs, Ordering::Relaxed);
    }

    /// Advance the clock by `delta_secs`, returning the new time.
    pub fn advance(&self, delta_secs: u64) -> u64 {
        self.0.fetch_add(delta_secs, Ordering::Relaxed) + delta_secs
    }
}

impl Clock for SimClock {
    fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_set_and_advance() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        c.set(3600);
        assert_eq!(c.now(), 3600);
        assert_eq!(c.advance(60), 3660);
        assert_eq!(c.now(), 3660);
    }

    #[test]
    fn starting_at_seeds_the_clock() {
        let c = SimClock::starting_at(86_400);
        assert_eq!(c.now(), 86_400);
    }
}
