//! `smn-obs` — deterministic observability for the SMN pipeline.
//!
//! The whole CLDS → coarsen → CDG → controller → incident pipeline used to
//! run as a black box: when a degradation ladder fired or a chaos campaign
//! misrouted an incident there was no trace of *why*. This crate is the
//! from-scratch, zero-external-dep answer, deterministic by construction:
//!
//! * **Tracing** ([`trace`]): span enter/exit and point events with typed
//!   key-value fields, exported as JSONL;
//! * **Metrics** ([`metrics`]): counters, gauges, and fixed-bucket
//!   histograms with a Prometheus-style text snapshot;
//! * **Audit trail** ([`audit`]): every CLTO decision — incident routes,
//!   degradation-ladder transitions, coarsening fallbacks — with its
//!   triggering evidence.
//!
//! All timestamps come from the [`clock::Clock`] trait backed by sim-time
//! (no implementation here reads the wall clock), so two identically
//! seeded runs produce **byte-identical** traces, trails, and snapshots.
//! Wall-clock latencies enter only as histogram *values* measured by the
//! bench binaries through `smn_bench::timer`, the workspace's single
//! audited wall-clock read.
//!
//! The [`Obs`] handle is the single front door. A disabled handle
//! ([`Obs::disabled`]) is a cheap no-op — every method early-returns on
//! one boolean load — so library code can be instrumented unconditionally
//! without taxing hot loops (the `obs_overhead` bench binary holds this
//! under 2%).

#![warn(missing_docs)]

pub mod audit;
pub mod clock;
pub mod metrics;
pub mod profile;
pub mod summary;
pub mod trace;

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use audit::AuditState;
use clock::{Clock, SimClock};
use metrics::MetricsState;
use profile::ProfileState;
use trace::{FieldValue, TracerState};

pub use metrics::{Histogram, DEFAULT_MS_BUCKETS};
pub use profile::{PhaseGuard, PhaseStat};
pub use trace::{EventKind, TraceEvent};

/// The observability handle: tracer + metrics + audit trail behind one
/// enabled flag, shared by `Arc` across the pipeline. A separate
/// wall-time profile registry ([`Obs::phase`]) rides along for the perf
/// trajectory; it never feeds the deterministic exports.
pub struct Obs {
    enabled: bool,
    clock: Arc<dyn Clock>,
    tracer: Mutex<TracerState>,
    metrics: Mutex<MetricsState>,
    audit: Mutex<AuditState>,
    profile: Mutex<ProfileState>,
}

// The three state mutexes are deliberately elided: dumping thousands of
// recorded events through `Debug` would make every instrumented struct's
// own `Debug` output unreadable.
#[allow(clippy::missing_fields_in_debug)]
impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.enabled).finish()
    }
}

impl Obs {
    /// An enabled handle reading timestamps from `clock`.
    pub fn enabled(clock: Arc<dyn Clock>) -> Arc<Obs> {
        Arc::new(Obs {
            enabled: true,
            clock,
            tracer: Mutex::new(TracerState::default()),
            metrics: Mutex::new(MetricsState::default()),
            audit: Mutex::new(AuditState::default()),
            profile: Mutex::new(ProfileState::default()),
        })
    }

    /// A disabled handle: every recording method is a near-free no-op.
    /// This is the default wired into instrumented components.
    #[must_use]
    pub fn disabled() -> Arc<Obs> {
        Arc::new(Obs {
            enabled: false,
            clock: SimClock::new(),
            tracer: Mutex::new(TracerState::default()),
            metrics: Mutex::new(MetricsState::default()),
            audit: Mutex::new(AuditState::default()),
            profile: Mutex::new(ProfileState::default()),
        })
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current observability time in simulated seconds.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    // ------------------------------------------------------------- tracing

    /// Open a span; it closes (emitting the exit event) when the returned
    /// guard drops. Fields added via [`Span::field`] attach to the exit.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_with(name, &[])
    }

    /// Open a span with fields on the enter event.
    pub fn span_with(&self, name: &str, fields: &[(&str, FieldValue)]) -> Span<'_> {
        if !self.enabled {
            return Span { obs: None, id: 0, name: String::new(), exit_fields: Vec::new() };
        }
        let owned: Vec<(String, FieldValue)> =
            fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
        let id = self.tracer.lock().enter(self.clock.now(), name, owned);
        Span { obs: Some(self), id, name: name.to_string(), exit_fields: Vec::new() }
    }

    /// Emit a point event inside the currently open span.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled {
            return;
        }
        let owned: Vec<(String, FieldValue)> =
            fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
        self.tracer.lock().point(self.clock.now(), name, owned);
    }

    // ----------------------------------------------------------- profiling

    /// Open a profiled phase: a trace span plus a wall-time measurement
    /// accumulated under the `;`-joined path of open phases (see
    /// [`profile`]). No-op (no clock read) on a disabled handle.
    // smn-lint: allow(deep/determinism-taint) -- wall readings stay in the profile registry, never in deterministic exports
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        profile::begin(self, name)
    }

    /// Fold one synthetic observation into the wall profile — the pure,
    /// deterministic front door used by tests and report replays.
    pub fn record_phase_ns(&self, path: &str, ns: u64) {
        if !self.enabled {
            return;
        }
        self.profile.lock().record(path, ns);
    }

    /// The accumulated wall profile, path-sorted.
    pub fn wall_profile(&self) -> Vec<PhaseStat> {
        self.profile.lock().stats()
    }

    /// The wall profile as folded-stack text for flamegraph tooling.
    pub fn wall_profile_folded(&self) -> String {
        self.profile.lock().folded()
    }

    // ------------------------------------------------------------- metrics

    /// Add `delta` to a counter.
    pub fn inc_by(&self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.lock().inc(name, delta);
    }

    /// Add 1 to a counter.
    pub fn inc(&self, name: &str) {
        self.inc_by(name, 1);
    }

    /// Set a gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.metrics.lock().set_gauge(name, value);
    }

    /// Observe into a histogram with [`DEFAULT_MS_BUCKETS`] (registered on
    /// first use).
    pub fn observe_ms(&self, name: &str, ms: f64) {
        self.observe(name, &DEFAULT_MS_BUCKETS, ms);
    }

    /// Observe into a histogram with explicit bucket bounds (used only on
    /// first observation of `name`).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        if !self.enabled {
            return;
        }
        self.metrics.lock().observe(name, bounds, value);
    }

    // --------------------------------------------------------------- audit

    /// Record a controller decision with its triggering evidence.
    pub fn audit(&self, actor: &str, action: &str, evidence: &[(&str, String)]) {
        if !self.enabled {
            return;
        }
        let owned: Vec<(String, String)> =
            evidence.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
        self.audit.lock().record(self.clock.now(), actor, action, owned);
    }

    // -------------------------------------------------------------- export

    /// The trace as JSONL (one event per line).
    pub fn trace_jsonl(&self) -> String {
        self.tracer.lock().to_jsonl()
    }

    /// Number of trace events recorded so far.
    pub fn trace_len(&self) -> usize {
        self.tracer.lock().events.len()
    }

    /// The metrics registry as Prometheus-style text.
    pub fn metrics_text(&self) -> String {
        self.metrics.lock().render_prometheus()
    }

    /// The audit trail as JSONL (one decision per line).
    pub fn audit_jsonl(&self) -> String {
        self.audit.lock().to_jsonl()
    }

    /// Number of audit records recorded so far.
    pub fn audit_len(&self) -> usize {
        self.audit.lock().records.len()
    }

    /// Current value of a counter (0 when absent) — for assertions.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge — for assertions.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.metrics.lock().gauges.get(name).copied()
    }

    /// Clone of a histogram — for assertions.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.metrics.lock().histograms.get(name).cloned()
    }
}

/// An open span; exits (recording the exit event) on drop.
pub struct Span<'a> {
    obs: Option<&'a Obs>,
    id: u64,
    name: String,
    exit_fields: Vec<(String, FieldValue)>,
}

impl Span<'_> {
    /// Attach a field to the span's exit event.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if self.obs.is_some() {
            self.exit_fields.push((key.to_string(), value.into()));
        }
    }

    /// The span id (0 for spans from a disabled handle).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(obs) = self.obs {
            let fields = std::mem::take(&mut self.exit_fields);
            obs.tracer.lock().exit(obs.clock.now(), self.id, &self.name, fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        {
            let mut s = obs.span_with("loop", &[("w", 1u64.into())]);
            s.field("n", 2u64);
            obs.event("mid", &[]);
        }
        obs.inc("c_total");
        obs.gauge("g", 1.0);
        obs.observe_ms("h_ms", 5.0);
        obs.audit("controller", "route", &[("team", "app".to_string())]);
        assert!(obs.trace_jsonl().is_empty());
        assert!(obs.metrics_text().is_empty());
        assert!(obs.audit_jsonl().is_empty());
        assert_eq!(obs.trace_len(), 0);
    }

    #[test]
    fn enabled_handle_stamps_sim_time() {
        let clock = SimClock::new();
        let obs = Obs::enabled(clock.clone());
        clock.set(3600);
        {
            let mut s = obs.span("window");
            clock.set(7200);
            s.field("routed", true);
        }
        obs.inc_by("windows_total", 1);
        let events: Vec<TraceEvent> =
            obs.trace_jsonl().lines().map(|l| TraceEvent::from_json_line(l).unwrap()).collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts, 3600);
        assert_eq!(events[1].ts, 7200);
        assert_eq!(events[1].fields[0].0, "routed");
        assert_eq!(obs.counter("windows_total"), 1);
    }

    #[test]
    fn audit_trail_orders_decisions() {
        let obs = Obs::enabled(SimClock::new());
        obs.audit("controller/incident", "degrade", &[("reason", "outage".to_string())]);
        obs.audit("controller/incident", "route-incident", &[("team", "net".to_string())]);
        let jsonl = obs.audit_jsonl();
        let lines: Vec<&str> = jsonl.lines().map(str::trim).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"degrade\""));
        assert!(lines[1].contains("\"route-incident\""));
        assert_eq!(obs.audit_len(), 2);
    }
}
