//! The controller decision audit trail.
//!
//! Every consequential CLTO decision — routing an incident, stepping down
//! a degradation ladder, falling back to a coarser planning resolution,
//! proposing a modulation retune — is recorded as an [`AuditRecord`] with
//! the evidence that triggered it. The trail answers the question the
//! degraded-mode campaigns kept raising: *why* did the controller do that?
//!
//! Records export as JSONL with fixed field order, so identically seeded
//! runs produce byte-identical trails.

use serde::Value;

/// One audited controller decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Emission order, 1-based, dense.
    pub seq: u64,
    /// Simulated seconds at decision time.
    pub ts: u64,
    /// Who decided, e.g. `"controller/incident"`.
    pub actor: String,
    /// What was decided, e.g. `"route-incident"`, `"degrade"`.
    pub action: String,
    /// Triggering evidence as ordered key → value pairs.
    pub evidence: Vec<(String, String)>,
}

impl AuditRecord {
    /// Serialize as one compact JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let evidence: Vec<(String, Value)> =
            self.evidence.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect();
        let map = Value::Map(vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("ts".to_string(), Value::U64(self.ts)),
            ("actor".to_string(), Value::Str(self.actor.clone())),
            ("action".to_string(), Value::Str(self.action.clone())),
            ("evidence".to_string(), Value::Map(evidence)),
        ]);
        serde_json::to_string(&map).unwrap_or_default()
    }

    /// Parse one JSONL line back into a record.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line: bad JSON, a missing
    /// or mistyped field, or non-string evidence values.
    pub fn from_json_line(line: &str) -> Result<AuditRecord, String> {
        let v = serde_json::parse_value(line).map_err(|e| e.to_string())?;
        let u64_of = |key: &str| -> Result<u64, String> {
            match v.get(key) {
                Some(Value::U64(n)) => Ok(*n),
                _ => Err(format!("missing or non-integer field '{key}'")),
            }
        };
        let str_of = |key: &str| -> Result<String, String> {
            match v.get(key) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing or non-string field '{key}'")),
            }
        };
        let mut evidence = Vec::new();
        match v.get("evidence") {
            Some(Value::Map(entries)) => {
                for (k, ev) in entries {
                    match ev {
                        Value::Str(s) => evidence.push((k.clone(), s.clone())),
                        other => return Err(format!("evidence '{k}' is not a string: {other:?}")),
                    }
                }
            }
            _ => return Err("missing or non-object field 'evidence'".to_string()),
        }
        Ok(AuditRecord {
            seq: u64_of("seq")?,
            ts: u64_of("ts")?,
            actor: str_of("actor")?,
            action: str_of("action")?,
            evidence,
        })
    }
}

/// Trail state behind the [`crate::Obs`] lock.
#[derive(Debug, Default)]
pub(crate) struct AuditState {
    /// Recorded decisions, in emission order.
    pub records: Vec<AuditRecord>,
    next_seq: u64,
}

impl AuditState {
    /// Append a decision record.
    pub fn record(&mut self, ts: u64, actor: &str, action: &str, evidence: Vec<(String, String)>) {
        self.next_seq += 1;
        self.records.push(AuditRecord {
            seq: self.next_seq,
            ts,
            actor: actor.to_string(),
            action: action.to_string(),
            evidence,
        });
    }

    /// Export the trail as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_jsonl() {
        let mut a = AuditState::default();
        a.record(
            3600,
            "controller/incident",
            "route-incident",
            vec![("team".to_string(), "network".to_string())],
        );
        a.record(
            7200,
            "controller/planning",
            "degrade",
            vec![
                ("from".to_string(), "fine".to_string()),
                ("to".to_string(), "hourly".to_string()),
            ],
        );
        let jsonl = a.to_jsonl();
        let parsed: Vec<AuditRecord> =
            jsonl.lines().map(|l| AuditRecord::from_json_line(l).unwrap()).collect();
        assert_eq!(parsed, a.records);
        assert_eq!(parsed[0].seq, 1);
        assert_eq!(parsed[1].evidence[1], ("to".to_string(), "hourly".to_string()));
    }

    #[test]
    fn malformed_records_error() {
        assert!(AuditRecord::from_json_line("{").is_err());
        assert!(AuditRecord::from_json_line(r#"{"seq":1}"#).is_err());
    }
}
