//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Everything is keyed by name in `BTreeMap`s so a snapshot renders in a
//! deterministic order — two identical runs produce byte-identical
//! Prometheus-style text. Histograms use *fixed* bucket bounds chosen at
//! first observation: merging two histograms with the same bounds is
//! associative and commutative (bucket counts, sum, and count all add),
//! which is what lets shards of a campaign be combined in any order.

use std::collections::BTreeMap;

/// Default bucket upper bounds for millisecond latencies.
pub const DEFAULT_MS_BUCKETS: [f64; 12] =
    [0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0];

/// A fixed-bucket histogram: cumulative-style bucket counts plus sum/count.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows the last.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the last
    /// is the overflow bucket).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// A histogram over the given upper bounds. Bounds are sorted and
    /// deduplicated; non-finite bounds are discarded (the `+Inf` bucket is
    /// always implicit).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, sum: 0.0, count: 0 }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.sum += v;
        self.count += 1;
    }

    /// Merge another histogram into this one. Returns `false` (leaving
    /// `self` untouched) when the bucket bounds differ — merging histograms
    /// of different shape silently would corrupt both.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        true
    }

    /// Mean of all observations (0 when empty).
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // observation counts stay far below 2^52
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile from the bucket boundaries: the upper bound of
    /// the bucket containing the `q`-th observation (the last finite bound
    /// for the overflow bucket; 0 when empty).
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)] // rank is clamped to [1, count]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.bounds.last().copied().unwrap_or(f64::INFINITY));
            }
        }
        self.bounds.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// The registry state behind the [`crate::Obs`] lock.
#[derive(Debug, Default)]
pub(crate) struct MetricsState {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsState {
    /// Add `delta` to the named counter.
    pub fn inc(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Observe into the named histogram, creating it with `bounds` on
    /// first use (later observations reuse the registered bounds).
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Render the whole registry as Prometheus-style text. Deterministic:
    /// metrics sort by name, histogram buckets by bound.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0;
            for (i, &b) in h.bounds.iter().enumerate() {
                cumulative += h.counts.get(i).copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact literals round-trip exactly; no arithmetic involved
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricsState::default();
        m.inc("a_total", 2);
        m.inc("a_total", 3);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.counters["a_total"], 5);
        assert_eq!(m.gauges["g"], 2.5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 0.9, 3.0, 7.0, 20.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1, 1]);
        assert_eq!(h.count, 5);
        assert!((h.sum - 31.4).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(1.0), 10.0); // overflow reports last bound
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn merge_requires_matching_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        assert!(a.merge(&b));
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        let other = Histogram::new(&[1.0, 3.0]);
        let before = a.clone();
        assert!(!a.merge(&other));
        assert_eq!(a, before, "failed merge must not mutate");
    }

    #[test]
    fn bounds_are_sanitized() {
        let h = Histogram::new(&[5.0, 1.0, 1.0, f64::INFINITY, f64::NAN]);
        assert_eq!(h.bounds, vec![1.0, 5.0]);
        assert_eq!(h.counts.len(), 3);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_cumulative() {
        let mut m = MetricsState::default();
        m.inc("z_total", 1);
        m.inc("a_total", 2);
        m.observe("lat_ms", &[1.0, 10.0], 0.5);
        m.observe("lat_ms", &[1.0, 10.0], 5.0);
        m.observe("lat_ms", &[1.0, 10.0], 50.0);
        let text = m.render_prometheus();
        let again = m.render_prometheus();
        assert_eq!(text, again);
        // Counters sort by name.
        assert!(text.find("a_total 2").unwrap() < text.find("z_total 1").unwrap());
        assert!(text.contains("lat_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ms_count 3"));
    }
}
