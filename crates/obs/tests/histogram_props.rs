//! Property tests for histogram merging.
//!
//! The degraded-mode campaigns merge per-shard histograms in whatever
//! order the profiles finish, so `Histogram::merge` must be associative
//! and commutative over same-bound histograms — `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)`
//! down to exact bucket counts, sums, and totals.

use proptest::collection::vec;
use proptest::prelude::*;

use smn_obs::Histogram;

const BOUNDS: [f64; 5] = [0.5, 2.0, 8.0, 32.0, 128.0];

fn filled(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(&BOUNDS);
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_associative(
        a in vec(0.0f64..200.0, 0..40),
        b in vec(0.0f64..200.0, 0..40),
        c in vec(0.0f64..200.0, 0..40),
    ) {
        // (a ⊔ b) ⊔ c
        let mut left = filled(&a);
        prop_assert!(left.merge(&filled(&b)));
        prop_assert!(left.merge(&filled(&c)));
        // a ⊔ (b ⊔ c)
        let mut bc = filled(&b);
        prop_assert!(bc.merge(&filled(&c)));
        let mut right = filled(&a);
        prop_assert!(right.merge(&bc));

        prop_assert_eq!(&left.counts, &right.counts);
        prop_assert_eq!(left.count, right.count);
        // Sums are f64 additions in different orders; bound the drift.
        prop_assert!((left.sum - right.sum).abs() <= 1e-6 * (1.0 + left.sum.abs()));
    }

    #[test]
    fn merge_is_commutative(
        a in vec(0.0f64..200.0, 0..40),
        b in vec(0.0f64..200.0, 0..40),
    ) {
        let mut ab = filled(&a);
        prop_assert!(ab.merge(&filled(&b)));
        let mut ba = filled(&b);
        prop_assert!(ba.merge(&filled(&a)));
        prop_assert_eq!(&ab.counts, &ba.counts);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert!((ab.sum - ba.sum).abs() <= 1e-6 * (1.0 + ab.sum.abs()));
    }

    #[test]
    fn merge_equals_bulk_observation(
        a in vec(0.0f64..200.0, 0..40),
        b in vec(0.0f64..200.0, 0..40),
    ) {
        let mut merged = filled(&a);
        prop_assert!(merged.merge(&filled(&b)));
        let mut all: Vec<f64> = a.clone();
        all.extend_from_slice(&b);
        let bulk = filled(&all);
        prop_assert_eq!(&merged.counts, &bulk.counts);
        prop_assert_eq!(merged.count, bulk.count);
    }
}
