//! Subcommand implementations for the `smn` CLI.

use std::collections::{BTreeMap, HashMap};

use smn_core::bwlogs::{TimeCoarsener, TopologyCoarsener};
use smn_core::coarsen::Coarsening;
use smn_core::controller::{ControllerConfig, Feedback, SmnController};
use smn_core::simulation::{SimulationConfig, SmnSimulation};
use smn_depgraph::dot::cdg_to_dot;
use smn_depgraph::syndrome::Explainability;
use smn_incident::faults::{FaultKind, FaultSpec};
use smn_incident::sim::{observe, SimConfig};
use smn_incident::RedditDeployment;
use smn_te::demand::DemandMatrix;
use smn_te::mcf::{greedy_min_max_utilization, TeConfig};
use smn_telemetry::series::Statistic;
use smn_telemetry::time::Ts;
use smn_telemetry::traffic::{TrafficConfig, TrafficModel};
use smn_topology::gen::{generate_planetary, PlanetaryConfig};
use smn_topology::EdgeId;

/// Parse `--flag N` style options; unknown flags are errors.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, u64>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "full" {
                out.insert("full".to_string(), 1);
                continue;
            }
            if !allowed.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let v = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("--{name} needs a number"))?;
            out.insert(name.to_string(), v);
        } else {
            return Err(format!("unexpected argument '{a}'"));
        }
    }
    Ok(out)
}

/// `smn topology` — generate and describe a planetary WAN.
pub fn topology(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["seed", "full"])?;
    let seed = flags.get("seed").copied().unwrap_or(7);
    let cfg = if flags.contains_key("full") {
        PlanetaryConfig { seed, ..PlanetaryConfig::default() }
    } else {
        PlanetaryConfig::small(seed)
    };
    let p = generate_planetary(&cfg);
    let regions = p.wan.contract_by_region();
    let continents = p.wan.contract_by_continent();
    println!("planetary WAN (seed {seed}):");
    println!("  datacenters:  {}", p.wan.dc_count());
    println!("  links:        {}", p.wan.link_count());
    println!("  regions:      {}", regions.graph.node_count());
    println!("  continents:   {}", continents.graph.node_count());
    println!("  fiber spans:  {}", p.optical.spans().len());
    println!("  wavelengths:  {}", p.optical.wavelengths().len());
    let subsea = p.optical.spans().iter().filter(|s| s.submarine).count();
    println!("  subsea spans: {subsea}");
    Ok(())
}

/// `smn coarsen` — coarsening summary over generated logs.
pub fn coarsen(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["days"])?;
    let days = flags.get("days").copied().unwrap_or(3);
    let p = generate_planetary(&PlanetaryConfig::small(7));
    let model = TrafficModel::new(&p.wan, TrafficConfig::default());
    let log = model.generate(Ts(0), TrafficModel::epochs_per_days(days));
    println!("{days} days, {} pairs, {} raw rows", model.pairs().len(), log.len());
    let regions = p.wan.contract_by_region();
    let topo = TopologyCoarsener::new(regions.node_map.clone()).report(&log);
    println!(
        "  topology (regions):     {:>8} rows  {:>7.1}x",
        topo.coarse.len(),
        topo.reduction_factor()
    );
    for (label, secs) in [("1h", 3600u64), ("1d", 86_400)] {
        let t = TimeCoarsener::new(secs, vec![Statistic::Mean, Statistic::P95]).report(&log);
        println!(
            "  time ({label}, mean+p95):   {:>8} rows  {:>7.1}x",
            t.coarse.len(),
            t.reduction_factor()
        );
    }
    let combined =
        TimeCoarsener::new(86_400, vec![Statistic::Mean, Statistic::P95]).report(&topo.coarse);
    println!(
        "  combined (regions+1d):  {:>8} rows  {:>7.1}x",
        combined.coarse.len(),
        (log.len() * 24) as f64
            / (combined.coarse.len() * combined.coarse[0].encoded_bytes()) as f64
    );
    Ok(())
}

fn fault_kind(name: &str) -> Result<FaultKind, String> {
    Ok(match name {
        "hypervisor" => FaultKind::HypervisorFailure,
        "crash" => FaultKind::ServerCrash,
        "timeout" => FaultKind::BadTimeout,
        "firewall" => FaultKind::FirewallRule,
        "packetloss" => FaultKind::PacketLoss,
        "disk" => FaultKind::DiskPressure,
        "leak" => FaultKind::MemoryLeak,
        "config" => FaultKind::ConfigError,
        "cachestorm" => FaultKind::CacheEvictionStorm,
        "backlog" => FaultKind::QueueBacklog,
        "flap" => FaultKind::LinkFlap,
        "cert" => FaultKind::CertExpiry,
        other => return Err(format!("unknown fault kind '{other}'")),
    })
}

/// `smn route <kind> <target>` — inject one fault and route it via the CDG.
pub fn route(args: &[String]) -> Result<(), String> {
    let [kind_name, target] = args else {
        return Err("usage: smn route <fault-kind> <target-component>".into());
    };
    let kind = fault_kind(kind_name)?;
    let d = RedditDeployment::build();
    let node = d.fine.by_name(target).ok_or_else(|| {
        let names: Vec<String> = d.fine.graph.nodes().map(|(_, c)| c.name.clone()).collect();
        format!("unknown component '{target}'; components: {}", names.join(", "))
    })?;
    let team = d.fine.component(node).team.clone();
    let fault = FaultSpec {
        id: 1,
        kind,
        target: target.clone(),
        variant: 0,
        severity: 0.9,
        team: team.clone(),
    };
    let obs = observe(&d, &fault, &SimConfig::default());
    println!("injected {kind_name} at {target} (owner team: {team})");
    println!("symptomatic teams:");
    for (i, &v) in obs.syndrome.0.iter().enumerate() {
        if v > 0.0 {
            println!("  {}", d.cdg.team(smn_topology::NodeId(i as u32)).name);
        }
    }
    let ex = Explainability::new(&d.cdg);
    match ex.best_team(&obs.syndrome) {
        Some(t) => {
            let routed = &d.cdg.team(t).name;
            println!(
                "routed to: {routed} (explainability {:.3}) — {}",
                ex.explainability(&obs.syndrome, t),
                if *routed == team { "correct" } else { "WRONG" }
            );
        }
        None => println!("no symptoms observed; nothing to route"),
    }
    Ok(())
}

/// `smn plan` — capacity planning over simulated weekly windows.
pub fn plan(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["weeks"])?;
    let weeks = flags.get("weeks").copied().unwrap_or(8);
    let p = generate_planetary(&PlanetaryConfig::small(7));
    let model = TrafficModel::new(&p.wan, TrafficConfig::default());
    let te_cfg = TeConfig { k_paths: 3, ..Default::default() };
    let mut history: BTreeMap<EdgeId, Vec<f64>> = BTreeMap::new();
    for week in 0..weeks {
        let log = model.generate(Ts::from_days(week * 7 + 2), TrafficModel::epochs_per_days(1));
        let demand = DemandMatrix::from_records(&log, Statistic::P95);
        let sol = greedy_min_max_utilization(
            &p.wan.graph,
            |_, e| if e.payload.up { e.payload.capacity_gbps } else { 0.0 },
            &demand,
            &te_cfg,
        );
        for eid in p.wan.graph.edge_ids() {
            history.entry(eid).or_default().push(sol.utilization.get(&eid).copied().unwrap_or(0.0));
        }
    }
    let controller = SmnController::new(
        smn_depgraph::coarse::CoarseDepGraph::new(),
        ControllerConfig::default(),
    );
    let feedback =
        controller.planning_loop(&history, |e| p.wan.graph.edge(e).payload.distance_km, &p.optical);
    let mut upgrades = 0;
    let mut blocked = 0;
    let mut cost = 0.0;
    for f in &feedback {
        match f {
            Feedback::ProvisionCapacity { cost: c, .. } => {
                upgrades += 1;
                cost += c;
            }
            Feedback::UpgradeBlockedByFiber { .. } => blocked += 1,
            _ => {}
        }
    }
    println!(
        "{weeks} weeks of history -> {upgrades} upgrades (total cost {cost:.0}), {blocked} blocked by fiber"
    );
    Ok(())
}

/// `smn run` — the continuous-operation simulation.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["days"])?;
    let days = flags.get("days").copied().unwrap_or(28);
    let p = generate_planetary(&PlanetaryConfig::small(7));
    let traffic = TrafficModel::new(&p.wan, TrafficConfig::default());
    let mut sim = SmnSimulation::new(&p, &traffic, SimulationConfig { days, ..Default::default() });
    let report = sim.run();
    println!(
        "{days} days: routing {:.0}% ({}/{}), {} upgrades, {} blocked, {} retunes, {} CLDS records",
        report.routing_accuracy() * 100.0,
        report.routing_correct,
        report.routing_total,
        report.upgrades,
        report.blocked,
        report.retunes,
        report.clds_records
    );
    Ok(())
}

/// `smn cdg` — print the Reddit CDG as DOT.
pub fn cdg() -> Result<(), String> {
    let d = RedditDeployment::build();
    print!("{}", cdg_to_dot(&d.cdg, "simulated Reddit CDG"));
    Ok(())
}

/// `smn lint` — run the workspace static-analysis pass (both engines).
///
/// Mirrors `cargo run -p smn-lint`: source rules over every workspace
/// crate, artifact rules over `artifacts/` (or the dirs named with
/// `--artifacts`). Fails on deny-level findings.
pub fn lint(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut artifact_dirs: Vec<std::path::PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--artifacts" => match it.next() {
                Some(dir) => artifact_dirs.push(std::path::PathBuf::from(dir)),
                None => return Err("--artifacts needs a directory".to_string()),
            },
            other => return Err(format!("unknown flag '{other}' (expected --json/--artifacts)")),
        }
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = smn_lint::find_workspace_root(&cwd)
        .ok_or_else(|| "no workspace root found above the current directory".to_string())?;
    let cfg = smn_lint::config::Config::load(&root)?;

    if artifact_dirs.is_empty() {
        let default_dir = root.join("artifacts");
        if default_dir.is_dir() {
            artifact_dirs.push(default_dir);
        }
    }

    let mut report = smn_lint::run_source(&root, &cfg);
    for dir in &artifact_dirs {
        let dir = if dir.is_absolute() { dir.clone() } else { root.join(dir) };
        report.merge(smn_lint::run_artifacts(&root, &dir));
    }

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.failed() {
        return Err("deny-level findings (see report above)".to_string());
    }
    Ok(())
}

/// `smn obs summarize` — summarize a deterministic JSONL trace.
///
/// Renders the span tree with durations, the top-N slowest spans, and
/// (with `--metrics`) the Prometheus snapshot written alongside the
/// trace. Fails when any trace line does not parse, so CI can gate on
/// artifact validity the same way it gates on `smn lint`.
pub fn obs(args: &[String]) -> Result<(), String> {
    const OBS_USAGE: &str =
        "usage: smn obs summarize <trace.jsonl> [--metrics FILE] [--top N] [--json]";
    let Some(action) = args.first() else {
        return Err(OBS_USAGE.to_string());
    };
    if action != "summarize" {
        return Err(format!("unknown obs action '{action}'\n{OBS_USAGE}"));
    }
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut top: usize = 10;
    let mut json = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--metrics" => match it.next() {
                Some(path) => metrics = Some(path.clone()),
                None => return Err("--metrics needs a file path".to_string()),
            },
            "--top" => match it.next() {
                Some(n) => {
                    top = n.parse().map_err(|_| format!("--top needs a number, got '{n}'"))?;
                }
                None => return Err("--top needs a number".to_string()),
            },
            other if !other.starts_with("--") && trace.is_none() => {
                trace = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'\n{OBS_USAGE}")),
        }
    }
    let Some(trace) = trace else {
        return Err(OBS_USAGE.to_string());
    };

    let jsonl = std::fs::read_to_string(&trace).map_err(|e| format!("cannot read {trace}: {e}"))?;
    let summary = smn_obs::summary::TraceSummary::parse(&jsonl);
    let metrics_text = match &metrics {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None => None,
    };

    if json {
        let rendered = summary.to_json(top);
        match metrics_text {
            Some(m) => {
                // Graft the raw metrics snapshot into the summary object so
                // `--json` stays a single parseable document.
                let mut value = serde_json::parse_value(&rendered)
                    .map_err(|e| format!("internal: summary JSON did not round-trip: {e}"))?;
                if let serde_json::Value::Map(entries) = &mut value {
                    entries.push(("metrics".to_string(), serde_json::Value::Str(m)));
                }
                println!("{}", serde_json::to_string_pretty(&value).map_err(|e| e.to_string())?);
            }
            None => println!("{rendered}"),
        }
    } else {
        print!("{}", summary.render_text(top));
        if let Some(m) = metrics_text {
            println!("\nmetric snapshot ({}):", metrics.as_deref().unwrap_or_default());
            for line in m.lines() {
                println!("  {line}");
            }
        }
    }

    if !summary.parse_errors.is_empty() {
        let (line, msg) = &summary.parse_errors[0];
        return Err(format!(
            "{} trace line(s) failed to parse (first: line {line}: {msg})",
            summary.parse_errors.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_and_reject() {
        let f = parse_flags(&s(&["--seed", "9"]), &["seed"]).unwrap();
        assert_eq!(f["seed"], 9);
        assert!(parse_flags(&s(&["--bogus", "1"]), &["seed"]).is_err());
        assert!(parse_flags(&s(&["--seed"]), &["seed"]).is_err());
        assert!(parse_flags(&s(&["--seed", "x"]), &["seed"]).is_err());
        assert!(parse_flags(&s(&["loose"]), &["seed"]).is_err());
    }

    #[test]
    fn fault_kinds_resolve() {
        assert!(fault_kind("hypervisor").is_ok());
        assert!(fault_kind("flap").is_ok());
        assert!(fault_kind("nope").is_err());
    }

    #[test]
    fn subcommands_run() {
        topology(&s(&["--seed", "3"])).unwrap();
        coarsen(&s(&["--days", "1"])).unwrap();
        route(&s(&["firewall", "firewall-1"])).unwrap();
        plan(&s(&["--weeks", "2"])).unwrap();
        cdg().unwrap();
        assert!(route(&s(&["firewall", "no-such-box"])).is_err());
        assert!(route(&s(&["firewall"])).is_err());
    }
}
