//! Subcommand implementations for the `smn` CLI.

use std::collections::{BTreeMap, HashMap};

use serde::Deserialize;
use smn_core::bwlogs::{TimeCoarsener, TopologyCoarsener};
use smn_core::coarsen::Coarsening;
use smn_core::controller::{ControllerConfig, Feedback, SmnController};
use smn_core::simulation::{SimulationConfig, SmnSimulation};
use smn_core::stream::{DeltaJournal, StreamConfig, StreamError, StreamState, TickOutcome};
use smn_coverage::{
    generate_covering_campaign, replay_campaign, CoverageReport, FaultLattice, GeneratedCampaign,
    GeneratorConfig, ReplayConfig,
};
use smn_depgraph::coarse::CoarseDepGraph;
use smn_depgraph::delta::GraphDelta;
use smn_depgraph::dot::cdg_to_dot;
use smn_depgraph::fine::{Component, DependencyKind, Layer};
use smn_depgraph::syndrome::Explainability;
use smn_heal::{route_to_team_mttr, Diagnosis, HealConfig, HealWorld, Healer, RemediationPhase};
use smn_incident::faults::{generate_campaign, CampaignConfig, FaultKind, FaultSpec};
use smn_incident::sim::{observe, SimConfig};
use smn_incident::{DeploymentStack, RedditDeployment};
use smn_obs::clock::SimClock;
use smn_obs::Obs;
use smn_te::demand::DemandMatrix;
use smn_te::mcf::{greedy_min_max_utilization, TeConfig};
use smn_telemetry::delta::TelemetryDelta;
use smn_telemetry::series::Statistic;
use smn_telemetry::time::Ts;
use smn_telemetry::traffic::{TrafficConfig, TrafficModel};
use smn_topology::gen::{generate_planetary, PlanetaryConfig};
use smn_topology::EdgeId;

/// Parse `--flag N` style options; unknown flags are errors.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, u64>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "full" {
                out.insert("full".to_string(), 1);
                continue;
            }
            if !allowed.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let v = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("--{name} needs a number"))?;
            out.insert(name.to_string(), v);
        } else {
            return Err(format!("unexpected argument '{a}'"));
        }
    }
    Ok(out)
}

/// `smn topology` — generate and describe a planetary WAN.
pub fn topology(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["seed", "full"])?;
    let seed = flags.get("seed").copied().unwrap_or(7);
    let cfg = if flags.contains_key("full") {
        PlanetaryConfig { seed, ..PlanetaryConfig::default() }
    } else {
        PlanetaryConfig::small(seed)
    };
    let p = generate_planetary(&cfg);
    let regions = p.wan.contract_by_region();
    let continents = p.wan.contract_by_continent();
    println!("planetary WAN (seed {seed}):");
    println!("  datacenters:  {}", p.wan.dc_count());
    println!("  links:        {}", p.wan.link_count());
    println!("  regions:      {}", regions.graph.node_count());
    println!("  continents:   {}", continents.graph.node_count());
    println!("  fiber spans:  {}", p.optical.spans().len());
    println!("  wavelengths:  {}", p.optical.wavelengths().len());
    let subsea = p.optical.spans().iter().filter(|s| s.submarine).count();
    println!("  subsea spans: {subsea}");
    Ok(())
}

/// `smn coarsen` — coarsening summary over generated logs.
pub fn coarsen(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["days"])?;
    let days = flags.get("days").copied().unwrap_or(3);
    let p = generate_planetary(&PlanetaryConfig::small(7));
    let model = TrafficModel::new(&p.wan, TrafficConfig::default());
    let log = model.generate(Ts(0), TrafficModel::epochs_per_days(days));
    println!("{days} days, {} pairs, {} raw rows", model.pairs().len(), log.len());
    let regions = p.wan.contract_by_region();
    let topo = TopologyCoarsener::new(regions.node_map.clone()).report(&log);
    println!(
        "  topology (regions):     {:>8} rows  {:>7.1}x",
        topo.coarse.len(),
        topo.reduction_factor()
    );
    for (label, secs) in [("1h", 3600u64), ("1d", 86_400)] {
        let t = TimeCoarsener::new(secs, vec![Statistic::Mean, Statistic::P95]).report(&log);
        println!(
            "  time ({label}, mean+p95):   {:>8} rows  {:>7.1}x",
            t.coarse.len(),
            t.reduction_factor()
        );
    }
    let combined =
        TimeCoarsener::new(86_400, vec![Statistic::Mean, Statistic::P95]).report(&topo.coarse);
    #[allow(clippy::cast_precision_loss)] // row counts stay far below 2^52
    let reduction = (log.len() * 24) as f64
        / (combined.coarse.len() * combined.coarse[0].encoded_bytes()) as f64;
    println!("  combined (regions+1d):  {:>8} rows  {:>7.1}x", combined.coarse.len(), reduction);
    Ok(())
}

fn fault_kind(name: &str) -> Result<FaultKind, String> {
    Ok(match name {
        "hypervisor" => FaultKind::HypervisorFailure,
        "crash" => FaultKind::ServerCrash,
        "timeout" => FaultKind::BadTimeout,
        "firewall" => FaultKind::FirewallRule,
        "packetloss" => FaultKind::PacketLoss,
        "disk" => FaultKind::DiskPressure,
        "leak" => FaultKind::MemoryLeak,
        "config" => FaultKind::ConfigError,
        "cachestorm" => FaultKind::CacheEvictionStorm,
        "backlog" => FaultKind::QueueBacklog,
        "flap" => FaultKind::LinkFlap,
        "cert" => FaultKind::CertExpiry,
        other => return Err(format!("unknown fault kind '{other}'")),
    })
}

/// `smn route <kind> <target>` — inject one fault and route it via the CDG.
pub fn route(args: &[String]) -> Result<(), String> {
    let [kind_name, target] = args else {
        return Err("usage: smn route <fault-kind> <target-component>".into());
    };
    let kind = fault_kind(kind_name)?;
    let d = RedditDeployment::build();
    let node = d.fine.by_name(target).ok_or_else(|| {
        let names: Vec<String> = d.fine.graph.nodes().map(|(_, c)| c.name.clone()).collect();
        format!("unknown component '{target}'; components: {}", names.join(", "))
    })?;
    let team = d.fine.component(node).team.clone();
    let fault = FaultSpec {
        id: 1,
        kind,
        target: target.clone(),
        variant: 0,
        severity: 0.9,
        team: team.clone(),
    };
    let obs = observe(&d, &fault, &SimConfig::default());
    println!("injected {kind_name} at {target} (owner team: {team})");
    println!("symptomatic teams:");
    for (i, &v) in (0u32..).zip(obs.syndrome.0.iter()) {
        if v > 0.0 {
            println!("  {}", d.cdg.team(smn_topology::NodeId(i)).name);
        }
    }
    let ex = Explainability::new(&d.cdg);
    match ex.best_team(&obs.syndrome) {
        Some(t) => {
            let routed = &d.cdg.team(t).name;
            println!(
                "routed to: {routed} (explainability {:.3}) — {}",
                ex.explainability(&obs.syndrome, t),
                if *routed == team { "correct" } else { "WRONG" }
            );
        }
        None => println!("no symptoms observed; nothing to route"),
    }
    Ok(())
}

/// `smn plan` — capacity planning over simulated weekly windows.
pub fn plan(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["weeks"])?;
    let weeks = flags.get("weeks").copied().unwrap_or(8);
    let p = generate_planetary(&PlanetaryConfig::small(7));
    let model = TrafficModel::new(&p.wan, TrafficConfig::default());
    let te_cfg = TeConfig { k_paths: 3, ..Default::default() };
    let mut history: BTreeMap<EdgeId, Vec<f64>> = BTreeMap::new();
    for week in 0..weeks {
        let log = model.generate(Ts::from_days(week * 7 + 2), TrafficModel::epochs_per_days(1));
        let demand = DemandMatrix::from_records(&log, Statistic::P95);
        let sol = greedy_min_max_utilization(
            &p.wan.graph,
            |_, e| if e.payload.up { e.payload.capacity_gbps } else { 0.0 },
            &demand,
            &te_cfg,
        );
        for eid in p.wan.graph.edge_ids() {
            history.entry(eid).or_default().push(sol.utilization.get(&eid).copied().unwrap_or(0.0));
        }
    }
    let controller = SmnController::new(
        smn_depgraph::coarse::CoarseDepGraph::new(),
        ControllerConfig::default(),
    );
    let feedback =
        controller.planning_loop(&history, |e| p.wan.graph.edge(e).payload.distance_km, &p.optical);
    let mut upgrades = 0;
    let mut blocked = 0;
    let mut cost = 0.0;
    for f in &feedback {
        match f {
            Feedback::ProvisionCapacity { cost: c, .. } => {
                upgrades += 1;
                cost += c;
            }
            Feedback::UpgradeBlockedByFiber { .. } => blocked += 1,
            _ => {}
        }
    }
    println!(
        "{weeks} weeks of history -> {upgrades} upgrades (total cost {cost:.0}), {blocked} blocked by fiber"
    );
    Ok(())
}

/// `smn run` — the continuous-operation simulation.
pub fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["days"])?;
    let days = flags.get("days").copied().unwrap_or(28);
    let p = generate_planetary(&PlanetaryConfig::small(7));
    let traffic = TrafficModel::new(&p.wan, TrafficConfig::default());
    let mut sim = SmnSimulation::new(&p, &traffic, SimulationConfig { days, ..Default::default() });
    let report = sim.run();
    println!(
        "{days} days: routing {:.0}% ({}/{}), {} upgrades, {} blocked, {} retunes, {} CLDS records",
        report.routing_accuracy() * 100.0,
        report.routing_correct,
        report.routing_total,
        report.upgrades,
        report.blocked,
        report.retunes,
        report.clds_records
    );
    Ok(())
}

/// `smn cdg` — print the Reddit CDG as DOT.
pub fn cdg() {
    let d = RedditDeployment::build();
    print!("{}", cdg_to_dot(&d.cdg, "simulated Reddit CDG"));
}

/// Flags accepted by `smn stream`, with their defaults.
struct StreamFlags {
    scale: smn_perf::Scale,
    ticks: usize,
    seed: u64,
    reconcile_every: u64,
    journal: Option<String>,
    json: bool,
}

fn parse_stream_flags(args: &[String]) -> Result<StreamFlags, String> {
    const STREAM_USAGE: &str = "usage: smn stream [--scale small|300|1000|3000] [--ticks N] \
                                [--seed N] [--reconcile-every N] [--journal FILE] [--json]";
    let mut flags = StreamFlags {
        scale: smn_perf::Scale::Small,
        ticks: 12,
        seed: 7,
        reconcile_every: 4,
        journal: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--json" => flags.json = true,
            "--scale" => flags.scale = smn_perf::Scale::parse(&take("a scale")?)?,
            "--ticks" => {
                let s = take("a number")?;
                flags.ticks =
                    s.parse().map_err(|_| format!("--ticks needs a number, got '{s}'"))?;
            }
            "--seed" => {
                let s = take("a number")?;
                flags.seed = s.parse().map_err(|_| format!("--seed needs a number, got '{s}'"))?;
            }
            "--reconcile-every" => {
                let s = take("a number")?;
                flags.reconcile_every = s
                    .parse()
                    .map_err(|_| format!("--reconcile-every needs a number, got '{s}'"))?;
            }
            "--journal" => flags.journal = Some(take("a file path")?),
            other => return Err(format!("unexpected argument '{other}'\n{STREAM_USAGE}")),
        }
    }
    if flags.ticks == 0 {
        return Err("--ticks must be at least 1".to_string());
    }
    Ok(flags)
}

/// Deterministic fine-graph churn for tick `tick`: every third tick a new
/// service comes up in a rotating team with a call edge from a rotating
/// pre-existing component.
fn stream_churn(tick: u64, teams: &[String], names: &[String]) -> Option<GraphDelta> {
    if tick % 3 != 2 || teams.is_empty() || names.is_empty() {
        return None;
    }
    let mut d = GraphDelta::new(tick);
    let name = format!("svc-tick-{tick}");
    #[allow(clippy::cast_possible_truncation)] // rotation index, bounded by len
    let team = &teams[(tick as usize / 3) % teams.len()];
    d.push_component(Component {
        name: name.clone(),
        service: name.clone(),
        team: team.clone(),
        layer: Layer::Application,
    });
    #[allow(clippy::cast_possible_truncation)]
    let src = &names[tick as usize % names.len()];
    d.push_dependency(src.clone(), name, DependencyKind::Call);
    Some(d)
}

/// Per-tick measurements reported by `smn stream`.
struct StreamTickRow {
    outcome: TickOutcome,
    apply_ms: f64,
    batch_ms: f64,
}

impl StreamTickRow {
    fn speedup(&self) -> f64 {
        self.batch_ms / self.apply_ms.max(1e-6)
    }
}

/// `smn stream` — run the incremental streaming loop and report
/// delta-apply vs full-recompute wall time per tick.
///
/// Generates `--ticks` five-minute telemetry epochs at `--scale`, feeds
/// them tick by tick through `SmnController::stream_tick` (with periodic
/// fine-graph churn), and times both the incremental apply and the batch
/// recompute it replaces. Reconciliation runs every `--reconcile-every`
/// ticks and once more at the end; any divergence is reported and exits
/// non-zero. `--journal` writes the `delta-journal` artifact that
/// `smn lint` checks.
#[allow(clippy::too_many_lines)] // linear report script: run, journal, render
pub fn stream(args: &[String]) -> Result<(), String> {
    let flags = parse_stream_flags(args)?;
    let planetary = generate_planetary(&flags.scale.config(flags.seed));
    let model = TrafficModel::new(&planetary.wan, TrafficConfig::default());
    let log = model.generate(Ts::from_days(2), flags.ticks);
    let deltas = TelemetryDelta::split_epochs(&log, 0);

    let d = RedditDeployment::build();
    let initial_names: Vec<String> = d.fine.graph.nodes().map(|(_, c)| c.name.clone()).collect();
    let teams = d.fine.teams();
    let mut ctl =
        SmnController::new(CoarseDepGraph::from_fine(&d.fine), ControllerConfig::default());
    ctl.set_obs(Obs::enabled(SimClock::new()));
    let cfg = StreamConfig { reconcile_every: flags.reconcile_every, ..StreamConfig::default() };
    let mut state = StreamState::new(cfg, d.fine.clone());

    let mut journal = DeltaJournal::new(
        flags.scale.as_str(),
        flags.seed,
        planetary.wan.dc_count() as u64,
        initial_names.clone(),
        flags.reconcile_every,
    );
    let mut rows: Vec<StreamTickRow> = Vec::with_capacity(deltas.len());
    let mut full_log = Vec::with_capacity(log.len());
    let mut verdict: Result<(), StreamError> = Ok(());
    for td in &deltas {
        let churn = stream_churn(td.tick, &teams, &initial_names);
        let (applied, apply_ms) =
            smn_bench::timer::time_ms(|| ctl.stream_tick(&mut state, td, churn.as_ref()));
        let outcome = match applied {
            Ok(o) => o,
            Err(e) => {
                verdict = Err(e);
                break;
            }
        };
        full_log.extend_from_slice(&td.records);
        // The cost the incremental path avoids: rebuild every coarse
        // artifact from the full raw history, as the batch pipeline would.
        let (batch_rows, batch_ms) = smn_bench::timer::time_ms(|| {
            let t = state.config.time_coarsener().coarsen(&full_log);
            let a = state.config.adaptive.coarsen(&full_log);
            let c = CoarseDepGraph::from_fine(&state.fine);
            t.len() + a.len() + c.len()
        });
        debug_assert!(batch_rows > 0);
        journal.push_outcome(&outcome);
        rows.push(StreamTickRow { outcome, apply_ms, batch_ms });
    }
    // Always end on a verdict: if the last tick did not reconcile, run a
    // final full-recompute reconciliation now.
    if verdict.is_ok() && rows.last().is_some_and(|r| r.outcome.reconcile.is_none()) {
        match ctl.stream_reconcile(&mut state) {
            Ok(outcome) => {
                if let (Some(row), Some(entry)) = (rows.last_mut(), journal.ticks.last_mut()) {
                    entry.reconciled = true;
                    entry.reconcile_hash = Some(outcome.hash.clone());
                    row.outcome.reconcile = Some(outcome);
                }
            }
            Err(e) => verdict = Err(e),
        }
    }

    if let Some(path) = &flags.journal {
        std::fs::write(path, journal.to_json_pretty() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let mean = |f: fn(&StreamTickRow) -> f64| -> f64 {
        #[allow(clippy::cast_precision_loss)] // tick counts stay far below 2^52
        let n = rows.len().max(1) as f64;
        rows.iter().map(f).sum::<f64>() / n
    };
    let verdict_str = match &verdict {
        Ok(()) => "byte-identical".to_string(),
        Err(e) => e.to_string(),
    };
    if flags.json {
        let obj = |entries: Vec<(&str, serde_json::Value)>| {
            serde_json::Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let ticks: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                obj(vec![
                    ("tick", serde_json::Value::U64(r.outcome.tick)),
                    ("records", serde_json::Value::U64(r.outcome.ingested as u64)),
                    ("dirty_cells", serde_json::Value::U64(r.outcome.time.dirty_cells as u64)),
                    ("total_rows", serde_json::Value::U64(r.outcome.time.total_rows as u64)),
                    ("apply_ms", serde_json::Value::F64(r.apply_ms)),
                    ("batch_ms", serde_json::Value::F64(r.batch_ms)),
                    ("speedup", serde_json::Value::F64(r.speedup())),
                    (
                        "reconcile_hash",
                        r.outcome.reconcile.as_ref().map_or(serde_json::Value::Null, |o| {
                            serde_json::Value::Str(o.hash.clone())
                        }),
                    ),
                ])
            })
            .collect();
        let doc = obj(vec![
            ("command", serde_json::Value::Str("stream".to_string())),
            ("scale", serde_json::Value::Str(flags.scale.as_str().to_string())),
            ("seed", serde_json::Value::U64(flags.seed)),
            ("reconcile_every", serde_json::Value::U64(flags.reconcile_every)),
            ("verdict", serde_json::Value::Str(verdict_str.clone())),
            ("mean_apply_ms", serde_json::Value::F64(mean(|r| r.apply_ms))),
            ("mean_batch_ms", serde_json::Value::F64(mean(|r| r.batch_ms))),
            ("mean_speedup", serde_json::Value::F64(mean(StreamTickRow::speedup))),
            ("ticks", serde_json::Value::Seq(ticks)),
        ]);
        println!("{}", serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?);
    } else {
        println!(
            "streaming {} ticks at scale {} (seed {}, reconcile every {}):",
            rows.len(),
            flags.scale,
            flags.seed,
            flags.reconcile_every
        );
        println!("  tick  records  dirty  rows    apply ms    batch ms  speedup  reconcile");
        for r in &rows {
            println!(
                "  {:>4}  {:>7}  {:>5}  {:>4}  {:>10.3}  {:>10.3}  {:>6.1}x  {}",
                r.outcome.tick,
                r.outcome.ingested,
                r.outcome.time.dirty_cells,
                r.outcome.time.total_rows,
                r.apply_ms,
                r.batch_ms,
                r.speedup(),
                r.outcome.reconcile.as_ref().map_or("-", |o| o.hash.as_str()),
            );
        }
        println!(
            "  mean: apply {:.3} ms vs batch {:.3} ms ({:.1}x)",
            mean(|r| r.apply_ms),
            mean(|r| r.batch_ms),
            mean(StreamTickRow::speedup)
        );
        println!("  reconciliation: {verdict_str}");
    }
    verdict.map_err(|e| format!("reconciliation divergence or stream error: {e}"))
}

/// Load a `fault-campaign` artifact and keep the faults whose targets
/// exist in this deployment; returns `(faults, skipped)`.
fn load_campaign(path: &str, d: &RedditDeployment) -> Result<(Vec<FaultSpec>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = serde_json::parse_value(&text).map_err(|e| format!("{path}: {e}"))?;
    match value.get("kind") {
        Some(serde_json::Value::Str(k)) if k == "fault-campaign" => {}
        _ => return Err(format!("{path}: not a fault-campaign artifact (missing kind)")),
    }
    let Some(serde_json::Value::Seq(fault_vs)) = value.get("faults") else {
        return Err(format!("{path}: fault-campaign has no 'faults' array"));
    };
    let mut faults = Vec::new();
    let mut skipped = 0usize;
    for (i, v) in fault_vs.iter().enumerate() {
        let f = FaultSpec::from_value(v).map_err(|e| format!("{path}: faults[{i}]: {e}"))?;
        if d.fine.by_name(&f.target).is_some() {
            faults.push(f);
        } else {
            skipped += 1;
        }
    }
    Ok((faults, skipped))
}

/// `smn heal` — run a remediation campaign through the closed-loop engine.
///
/// Observes each fault, diagnoses it (`Explainability::best_team`), and
/// hands it to `smn_heal::Healer` for plan → execute → verify → commit or
/// roll back. Reports MTTR against the deterministic route-to-team human
/// model. A rollback *storm* — more than `--storm-threshold` percent of
/// attempted remediations rolled back — exits non-zero, since it means the
/// planner is mostly hurting the network it is supposed to heal.
/// Flags accepted by `smn heal`, with their defaults.
struct HealFlags {
    n_faults: usize,
    campaign_file: Option<String>,
    storm_threshold: u32,
    json: bool,
}

fn parse_heal_flags(args: &[String]) -> Result<HealFlags, String> {
    const HEAL_USAGE: &str =
        "usage: smn heal [--faults N] [--campaign FILE] [--storm-threshold PCT] [--json]";
    let mut flags =
        HealFlags { n_faults: 120, campaign_file: None, storm_threshold: 60, json: false };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => flags.json = true,
            "--faults" => match it.next() {
                Some(n) => {
                    flags.n_faults =
                        n.parse().map_err(|_| format!("--faults needs a number, got '{n}'"))?;
                }
                None => return Err("--faults needs a number".to_string()),
            },
            "--campaign" => match it.next() {
                Some(path) => flags.campaign_file = Some(path.clone()),
                None => return Err("--campaign needs a file path".to_string()),
            },
            "--storm-threshold" => match it.next() {
                Some(n) => {
                    flags.storm_threshold = n
                        .parse()
                        .map_err(|_| format!("--storm-threshold needs a percent, got '{n}'"))?;
                }
                None => return Err("--storm-threshold needs a percent".to_string()),
            },
            other => return Err(format!("unexpected argument '{other}'\n{HEAL_USAGE}")),
        }
    }
    Ok(flags)
}

pub fn heal(args: &[String]) -> Result<(), String> {
    let HealFlags { n_faults, campaign_file, storm_threshold, json } = parse_heal_flags(args)?;

    let d = RedditDeployment::build();
    let planetary = generate_planetary(&PlanetaryConfig::small(7));
    let contraction = planetary.wan.contract_by_region();
    let stack = DeploymentStack::bind(&d, planetary.optical, planetary.wan);
    let sim = SimConfig::default();
    let world =
        HealWorld { deployment: &d, stack: stack.stack(), contraction: &contraction, sim: &sim };

    let (faults, skipped) = match &campaign_file {
        Some(path) => load_campaign(path, &d)?,
        None => (generate_campaign(&d, &CampaignConfig { n_faults, ..Default::default() }), 0),
    };
    if faults.is_empty() {
        return Err("campaign has no usable faults".to_string());
    }

    let cfg = HealConfig::default();
    let heal_seed = cfg.seed;
    let mut healer = Healer::new(cfg);
    let ex = Explainability::new(&d.cdg);
    let mut unrouted = 0usize;
    let (mut verified, mut rolled_back, mut escalated) = (0usize, 0usize, 0usize);
    let (mut mttr_heal_sum, mut mttr_route_sum) = (0.0f64, 0.0f64);
    let mut accounted = 0usize;
    for fault in &faults {
        let observation = observe(&d, fault, &sim);
        let Some(team_id) = ex.best_team(&observation.syndrome) else {
            unrouted += 1;
            continue;
        };
        let team = d.cdg.team(team_id).name.clone();
        let explainability = ex.explainability(&observation.syndrome, team_id);
        let diag = Diagnosis::from_observation(&d, &observation, &team, explainability);
        let record = healer.heal(&world, &diag, fault);
        match record.phase {
            RemediationPhase::Verified => verified += 1,
            RemediationPhase::RolledBack => rolled_back += 1,
            RemediationPhase::Escalated => escalated += 1,
        }
        mttr_heal_sum += record.mttr_minutes;
        mttr_route_sum += route_to_team_mttr(team == fault.team, heal_seed, fault.id);
        accounted += 1;
    }

    let attempted = verified + rolled_back;
    #[allow(clippy::cast_precision_loss)] // campaign sizes stay far below 2^52
    let mean = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
    let rollback_pct = if attempted == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            100.0 * rolled_back as f64 / attempted as f64
        }
    };
    let mttr_heal = mean(mttr_heal_sum, accounted);
    let mttr_route = mean(mttr_route_sum, accounted);

    if json {
        let obj = |entries: Vec<(&str, serde_json::Value)>| {
            serde_json::Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let u = |n: usize| serde_json::Value::U64(n as u64);
        let report = obj(vec![
            ("command", serde_json::Value::Str("heal".to_string())),
            ("faults", u(faults.len())),
            ("skipped_unknown_targets", u(skipped)),
            ("unrouted", u(unrouted)),
            ("verified", u(verified)),
            ("rolled_back", u(rolled_back)),
            ("escalated", u(escalated)),
            ("rollback_pct", serde_json::Value::F64(rollback_pct)),
            ("mttr_heal_mean_minutes", serde_json::Value::F64(mttr_heal)),
            ("mttr_route_mean_minutes", serde_json::Value::F64(mttr_route)),
        ]);
        println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
    } else {
        println!("remediation campaign: {} faults (heal seed {heal_seed:#x})", faults.len());
        if skipped > 0 {
            println!("  skipped (unknown targets): {skipped}");
        }
        println!("  verified:    {verified}");
        println!("  rolled back: {rolled_back}  ({rollback_pct:.0}% of executed)");
        println!("  escalated:   {escalated}");
        println!("  unrouted:    {unrouted}");
        println!("  MTTR: heal {mttr_heal:.1}m vs route-to-team {mttr_route:.1}m");
    }

    if rollback_pct > f64::from(storm_threshold) {
        return Err(format!(
            "rollback storm: {rolled_back}/{attempted} executed remediations rolled back \
             ({rollback_pct:.0}% > {storm_threshold}% threshold)"
        ));
    }
    Ok(())
}

/// Flags accepted by `smn coverage`, with their defaults.
struct CoverageFlags {
    seed: u64,
    threshold: u64,
    campaign_file: Option<String>,
    out: Option<String>,
    baseline: bool,
    json: bool,
}

fn parse_coverage_flags(args: &[String]) -> Result<CoverageFlags, String> {
    const COVERAGE_USAGE: &str = "usage: smn coverage [--seed N] [--threshold PCT] \
                                  [--campaign FILE] [--out FILE] [--no-baseline] [--json]";
    let mut flags = CoverageFlags {
        seed: GeneratorConfig::default().seed,
        threshold: 80,
        campaign_file: None,
        out: None,
        baseline: true,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => flags.json = true,
            "--no-baseline" => flags.baseline = false,
            "--seed" => match it.next() {
                Some(n) => {
                    flags.seed =
                        n.parse().map_err(|_| format!("--seed needs a number, got '{n}'"))?;
                }
                None => return Err("--seed needs a number".to_string()),
            },
            "--threshold" => match it.next() {
                Some(n) => {
                    flags.threshold =
                        n.parse().map_err(|_| format!("--threshold needs a percent, got '{n}'"))?;
                }
                None => return Err("--threshold needs a percent".to_string()),
            },
            "--campaign" => match it.next() {
                Some(path) => flags.campaign_file = Some(path.clone()),
                None => return Err("--campaign needs a file path".to_string()),
            },
            "--out" => match it.next() {
                Some(path) => flags.out = Some(path.clone()),
                None => return Err("--out needs a file path".to_string()),
            },
            other => return Err(format!("unexpected argument '{other}'\n{COVERAGE_USAGE}")),
        }
    }
    Ok(flags)
}

/// `smn coverage` — measure a campaign against the fault lattice.
///
/// Builds the reachable lattice for the standard deployment + planetary
/// stack, replays a campaign (the coverage-guided generated one by
/// default, or a `--campaign` artifact) through the real controller, and
/// reports covered / uncovered / unreachable cells from the audit-trail
/// evidence. Exits non-zero when coverage falls below `--threshold`
/// percent of the reachable lattice (default 80), which is the CI gate.
/// Unless `--no-baseline`, the fixed 560-fault campaign is replayed too
/// and reported alongside, as the floor the generator must beat.
#[allow(clippy::too_many_lines)] // linear gate script: replay, report, baseline, threshold
pub fn coverage(args: &[String]) -> Result<(), String> {
    let flags = parse_coverage_flags(args)?;

    let d = RedditDeployment::build();
    let planetary = generate_planetary(&PlanetaryConfig::small(7));
    let ds = DeploymentStack::bind(&d, planetary.optical, planetary.wan);
    let lattice = FaultLattice::build(&d, &ds);
    let sim = SimConfig::default();
    let replay_cfg = ReplayConfig::default();

    let (label, campaign) = match &flags.campaign_file {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let value = serde_json::parse_value(&text).map_err(|e| format!("{path}: {e}"))?;
            match value.get("kind") {
                Some(serde_json::Value::Str(k)) if k == "fault-campaign" => {}
                _ => return Err(format!("{path}: not a fault-campaign artifact (missing kind)")),
            }
            let campaign =
                GeneratedCampaign::from_artifact(&value).map_err(|e| format!("{path}: {e}"))?;
            (path.as_str(), campaign)
        }
        None => (
            "generated",
            generate_covering_campaign(&d, &ds, &lattice, &GeneratorConfig { seed: flags.seed }),
        ),
    };
    let outcome =
        replay_campaign(&d, &ds, &lattice, &campaign.faults, &campaign.loci, &sim, &replay_cfg);
    let report =
        CoverageReport::build(label, flags.seed, campaign.faults.len(), &lattice, &outcome.map);

    let baseline = flags.baseline.then(|| {
        let cfg = CampaignConfig::default();
        let fixed = generate_campaign(&d, &cfg);
        let outcome = replay_campaign(&d, &ds, &lattice, &fixed, &[], &sim, &replay_cfg);
        CoverageReport::build("fixed-560", cfg.seed, fixed.len(), &lattice, &outcome.map)
    });

    if let Some(path) = &flags.out {
        let text = serde_json::to_string_pretty(&report.to_artifact())
            .map_err(|e| format!("serializing report: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    if flags.json {
        let obj = |entries: Vec<(&str, serde_json::Value)>| {
            serde_json::Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let doc = obj(vec![
            ("command", serde_json::Value::Str("coverage".to_string())),
            ("threshold_pct", serde_json::Value::U64(flags.threshold)),
            ("report", report.to_artifact()),
            (
                "baseline",
                baseline.as_ref().map_or(serde_json::Value::Null, CoverageReport::to_artifact),
            ),
        ]);
        println!("{}", serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?);
    } else {
        println!(
            "fault-lattice coverage: {} ({} faults, seed {:#x})",
            report.campaign, report.n_faults, report.campaign_seed
        );
        println!(
            "  lattice:     {} cells, {} reachable here",
            report.total_cells, report.reachable
        );
        println!("  unreachable: {} (off-deployment shell)", report.unreachable);
        println!(
            "  covered:     {}/{} ({:.1}%)",
            report.covered,
            report.reachable,
            report.ratio_pct()
        );
        for row in report.uncovered() {
            println!("  uncovered:   {}", row.cell.label());
        }
        for row in report.unexpected() {
            println!("  unexpected:  {} (off-lattice, {} hits)", row.cell.label(), row.count);
        }
        if let Some(b) = &baseline {
            println!(
                "  baseline:    {} covers {}/{} ({:.1}%)",
                b.campaign,
                b.covered,
                b.reachable,
                b.ratio_pct()
            );
        }
    }

    #[allow(clippy::cast_precision_loss)] // thresholds are small percentages
    let threshold_pct = flags.threshold as f64;
    if report.ratio_pct() < threshold_pct {
        return Err(format!(
            "coverage gate: {:.1}% of the reachable lattice is below the {}% threshold",
            report.ratio_pct(),
            flags.threshold
        ));
    }
    if let Some(b) = &baseline {
        if b.ratio_pct() >= report.ratio_pct() && flags.campaign_file.is_none() {
            return Err(format!(
                "coverage gate: the fixed baseline ({:.1}%) matches or beats the generated \
                 campaign ({:.1}%); the generator is not earning its keep",
                b.ratio_pct(),
                report.ratio_pct()
            ));
        }
    }
    Ok(())
}

/// `smn lint` — run the workspace static-analysis pass (both engines).
///
/// Mirrors `cargo run -p smn-lint`: source rules over every workspace
/// crate, artifact rules over `artifacts/` (or the dirs named with
/// `--artifacts`). `--deep` adds the whole-workspace call-graph pass
/// (determinism taint, panic reachability against the committed
/// `panic-baseline.txt` ratchet, lock discipline, consequential
/// unresolved-call ambiguity). Fails on deny-level findings.
pub fn lint(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut deep = false;
    let mut artifact_dirs: Vec<std::path::PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deep" => deep = true,
            "--artifacts" => match it.next() {
                Some(dir) => artifact_dirs.push(std::path::PathBuf::from(dir)),
                None => return Err("--artifacts needs a directory".to_string()),
            },
            other => {
                return Err(format!("unknown flag '{other}' (expected --json/--deep/--artifacts)"))
            }
        }
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = smn_lint::find_workspace_root(&cwd)
        .ok_or_else(|| "no workspace root found above the current directory".to_string())?;
    let cfg = smn_lint::config::Config::load(&root)?;

    if artifact_dirs.is_empty() {
        let default_dir = root.join("artifacts");
        if default_dir.is_dir() {
            artifact_dirs.push(default_dir);
        }
    }

    let mut report = smn_lint::run_source(&root, &cfg);
    for dir in &artifact_dirs {
        let dir = if dir.is_absolute() { dir.clone() } else { root.join(dir) };
        report.merge(smn_lint::run_artifacts(&root, &dir));
    }

    let mut deep_result = None;
    if deep {
        let baseline = match std::fs::read_to_string(root.join("panic-baseline.txt")) {
            Ok(text) => Some(smn_lint::reach::parse_baseline(&text)?),
            Err(_) => None,
        };
        let opts = smn_lint::deep::DeepOptions { baseline };
        let result = smn_lint::deep::analyze_workspace(&root, &cfg, &opts);
        report.merge(result.report.clone());
        deep_result = Some(result);
    }

    if json {
        match &deep_result {
            Some(d) => {
                use serde::{Serialize, Value};
                let root_value = Value::Map(vec![
                    ("report".to_string(), report.to_value()),
                    ("deep".to_string(), d.summary.to_value()),
                ]);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&root_value)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
                );
            }
            None => println!("{}", report.to_json()),
        }
    } else {
        print!("{}", report.render());
        if let Some(d) = &deep_result {
            let s = &d.summary;
            println!(
                "smn-lint --deep: {} function(s), {} edge(s), {} unresolved, {} external; \
                 {} det endpoint(s); {} panic-reachable public API(s)",
                s.functions,
                s.edges,
                s.unresolved,
                s.external,
                s.det_endpoints,
                s.panic_per_crate.values().sum::<usize>()
            );
        }
    }
    if report.failed() {
        return Err("deny-level findings (see report above)".to_string());
    }
    Ok(())
}

/// `smn obs summarize` — summarize a deterministic JSONL trace.
///
/// Renders the span tree with durations, the top-N slowest spans, and
/// (with `--metrics`) the Prometheus snapshot written alongside the
/// trace. Fails when any trace line does not parse, so CI can gate on
/// artifact validity the same way it gates on `smn lint`.
pub fn obs(args: &[String]) -> Result<(), String> {
    const OBS_USAGE: &str =
        "usage: smn obs summarize <trace.jsonl> [--metrics FILE] [--top N] [--json]";
    let Some(action) = args.first() else {
        return Err(OBS_USAGE.to_string());
    };
    if action != "summarize" {
        return Err(format!("unknown obs action '{action}'\n{OBS_USAGE}"));
    }
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut top: usize = 10;
    let mut json = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--metrics" => match it.next() {
                Some(path) => metrics = Some(path.clone()),
                None => return Err("--metrics needs a file path".to_string()),
            },
            "--top" => match it.next() {
                Some(n) => {
                    top = n.parse().map_err(|_| format!("--top needs a number, got '{n}'"))?;
                }
                None => return Err("--top needs a number".to_string()),
            },
            other if !other.starts_with("--") && trace.is_none() => {
                trace = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'\n{OBS_USAGE}")),
        }
    }
    let Some(trace) = trace else {
        return Err(OBS_USAGE.to_string());
    };

    let jsonl = std::fs::read_to_string(&trace).map_err(|e| format!("cannot read {trace}: {e}"))?;
    let summary = smn_obs::summary::TraceSummary::parse(&jsonl);
    let metrics_text = match &metrics {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None => None,
    };

    if json {
        let rendered = summary.to_json(top);
        match metrics_text {
            Some(m) => {
                // Graft the raw metrics snapshot into the summary object so
                // `--json` stays a single parseable document.
                let mut value = serde_json::parse_value(&rendered)
                    .map_err(|e| format!("internal: summary JSON did not round-trip: {e}"))?;
                if let serde_json::Value::Map(entries) = &mut value {
                    entries.push(("metrics".to_string(), serde_json::Value::Str(m)));
                }
                println!("{}", serde_json::to_string_pretty(&value).map_err(|e| e.to_string())?);
            }
            None => println!("{rendered}"),
        }
    } else {
        print!("{}", summary.render_text(top));
        if let Some(m) = metrics_text {
            println!("\nmetric snapshot ({}):", metrics.as_deref().unwrap_or_default());
            for line in m.lines() {
                println!("  {line}");
            }
        }
    }

    if !summary.parse_errors.is_empty() {
        let (line, msg) = &summary.parse_errors[0];
        return Err(format!(
            "{} trace line(s) failed to parse (first: line {line}: {msg})",
            summary.parse_errors.len()
        ));
    }
    Ok(())
}

/// `smn perf` — record, diff, and gate performance trajectories.
///
/// `record` runs the scale-sweep suite and writes a `BenchReport`
/// (plus a folded-stack wall profile) under `target/perf/`; `diff`
/// prints a deterministic per-phase comparison of two report sets;
/// `gate` fails (exit 1) when the current reports regress against the
/// committed baselines.
pub fn perf(args: &[String]) -> Result<(), String> {
    const PERF_USAGE: &str = "usage: smn perf <record|diff|gate> [options]\n  \
         smn perf record [--scale small|300|1000|3000] [--seed N]\n                  \
         [--out FILE] [--profile FILE] [--revision R]\n  \
         smn perf diff <baseline> <current>         (report files or dirs)\n  \
         smn perf gate [--baseline PATH] [--current PATH]\n                \
         [--metric-tol F] [--wall-factor F]";
    match args.first().map(String::as_str) {
        Some("record") => perf_record(&args[1..]),
        Some("diff") => perf_diff(&args[1..]),
        Some("gate") => perf_gate(&args[1..]),
        Some(other) => Err(format!("unknown perf action '{other}'\n{PERF_USAGE}")),
        None => Err(PERF_USAGE.to_string()),
    }
}

/// Load `BenchReport`s from a file or from every `*.json` in a
/// directory (sorted by file name so downstream output is stable).
fn load_reports(path: &str) -> Result<Vec<smn_perf::BenchReport>, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut files: Vec<std::path::PathBuf> = if meta.is_dir() {
        let entries = std::fs::read_dir(path).map_err(|e| format!("cannot list {path}: {e}"))?;
        entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect()
    } else {
        vec![std::path::PathBuf::from(path)]
    };
    files.sort();
    if files.is_empty() {
        return Err(format!("no *.json reports under {path}"));
    }
    let mut reports = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let report = smn_perf::BenchReport::from_json(&text)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        reports.push(report);
    }
    Ok(reports)
}

fn perf_record(args: &[String]) -> Result<(), String> {
    let mut cfg = smn_perf::RecordConfig::default();
    let mut out: Option<String> = None;
    let mut profile: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--scale" => {
                let s = take("a scale")?;
                cfg.scale = smn_perf::Scale::parse(&s)?;
            }
            "--seed" => {
                let s = take("a number")?;
                cfg.seed = s.parse().map_err(|_| format!("--seed needs a number, got '{s}'"))?;
            }
            "--out" => out = Some(take("a file path")?),
            "--profile" => profile = Some(take("a file path")?),
            "--revision" => cfg.revision = take("a string")?,
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let out = out.unwrap_or_else(|| format!("target/perf/BENCH_perf_{}.json", cfg.scale));
    let profile = profile.unwrap_or_else(|| format!("target/perf/perf_{}.folded", cfg.scale));

    println!("perf record: scale={} seed={} revision={}", cfg.scale, cfg.seed, cfg.revision);
    let outcome = smn_perf::record::run(&cfg);
    outcome.report.validate().map_err(|e| format!("internal: recorded report invalid: {e}"))?;

    for path in [&out, &profile] {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
    }
    std::fs::write(&out, outcome.report.to_json_pretty() + "\n")
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    std::fs::write(&profile, &outcome.folded)
        .map_err(|e| format!("cannot write {profile}: {e}"))?;
    println!("report:  -> {out}");
    println!("profile: -> {profile}");
    for phase in &outcome.report.phases {
        if phase.path.starts_with("perf/") && !phase.path.contains(';') {
            println!("  {:<14} {:>10.2} ms", phase.path, phase.total_ms);
        }
    }
    Ok(())
}

fn perf_diff(args: &[String]) -> Result<(), String> {
    let [base, cur] = args else {
        return Err("usage: smn perf diff <baseline> <current>".to_string());
    };
    let base = load_reports(base)?;
    let cur = load_reports(cur)?;
    let rows = smn_perf::diff_reports(&base, &cur);
    print!("{}", smn_perf::render_diff(&rows));
    Ok(())
}

fn perf_gate(args: &[String]) -> Result<(), String> {
    let mut baseline = "artifacts/perf".to_string();
    let mut current = "target/perf".to_string();
    let mut cfg = smn_perf::GateConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--baseline" => baseline = take("a path")?,
            "--current" => current = take("a path")?,
            "--metric-tol" => {
                let s = take("a number")?;
                cfg.metric_tol =
                    s.parse().map_err(|_| format!("--metric-tol needs a number, got '{s}'"))?;
            }
            "--wall-factor" => {
                let s = take("a number")?;
                cfg.wall_factor =
                    s.parse().map_err(|_| format!("--wall-factor needs a number, got '{s}'"))?;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let base = load_reports(&baseline)?;
    let cur = load_reports(&current)?;
    let violations = smn_perf::gate_reports(&base, &cur, &cfg);
    print!("{}", smn_perf::render_gate(&violations));
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} perf regression(s) vs {baseline}", violations.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn flags_parse_and_reject() {
        let f = parse_flags(&s(&["--seed", "9"]), &["seed"]).unwrap();
        assert_eq!(f["seed"], 9);
        assert!(parse_flags(&s(&["--bogus", "1"]), &["seed"]).is_err());
        assert!(parse_flags(&s(&["--seed"]), &["seed"]).is_err());
        assert!(parse_flags(&s(&["--seed", "x"]), &["seed"]).is_err());
        assert!(parse_flags(&s(&["loose"]), &["seed"]).is_err());
    }

    #[test]
    fn fault_kinds_resolve() {
        assert!(fault_kind("hypervisor").is_ok());
        assert!(fault_kind("flap").is_ok());
        assert!(fault_kind("nope").is_err());
    }

    #[test]
    fn perf_record_diff_gate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("smn-cli-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_perf_small.json");
        let out = out.to_str().unwrap().to_string();
        let profile = dir.join("perf_small.folded");
        let profile = profile.to_str().unwrap().to_string();
        perf(&s(&["record", "--scale", "small", "--out", &out, "--profile", &profile])).unwrap();
        // A run diffed and gated against itself is clean.
        perf(&s(&["diff", &out, &out])).unwrap();
        perf(&s(&["gate", "--baseline", &out, "--current", &out])).unwrap();
        // Directory loading sees the same single report.
        let dir_str = dir.to_str().unwrap().to_string();
        perf(&s(&["gate", "--baseline", &dir_str, "--current", &out])).unwrap();
        assert!(perf(&s(&["bogus"])).is_err());
        assert!(perf(&s(&["record", "--scale", "450"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn subcommands_run() {
        topology(&s(&["--seed", "3"])).unwrap();
        coarsen(&s(&["--days", "1"])).unwrap();
        route(&s(&["firewall", "firewall-1"])).unwrap();
        plan(&s(&["--weeks", "2"])).unwrap();
        cdg();
        assert!(route(&s(&["firewall", "no-such-box"])).is_err());
        assert!(route(&s(&["firewall"])).is_err());
    }
}
