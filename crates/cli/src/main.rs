//! `smn` — the operator CLI for the Software Managed Networks reproduction.
//!
//! ```console
//! smn topology [--seed N] [--full]     describe a generated planetary WAN
//! smn coarsen  [--days N]              coarsening size/fidelity summary
//! smn route    <fault-kind> <target>   inject one fault and route it
//! smn plan     [--weeks N]             run the capacity-planning pipeline
//! smn run      [--days N]              continuous operation (all loops)
//! smn cdg                              print the Reddit CDG as DOT
//! smn stream [--ticks N] [--json]      incremental streaming loop with
//!                                      reconciliation-proven byte-identity
//! smn heal [--faults N] [--json]       closed-loop remediation campaign
//! smn coverage [--json] [--seed N]     fault-lattice coverage gate
//! smn lint [--json] [--artifacts DIR]  static analysis (source + artifacts)
//!          [--deep]                    add the call-graph deep pass
//! smn obs summarize <trace.jsonl>      summarize a deterministic trace
//! smn perf record [--scale S]          record a perf-trajectory report
//! smn perf diff <base> <cur>           compare two report sets
//! smn perf gate [--baseline P]         fail on perf regressions
//! ```
//!
//! Argument parsing is intentionally dependency-free (two flags per
//! subcommand); anything richer belongs in the example binaries.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "topology" => commands::topology(rest),
        "coarsen" => commands::coarsen(rest),
        "route" => commands::route(rest),
        "plan" => commands::plan(rest),
        "run" => commands::run(rest),
        "cdg" => {
            commands::cdg();
            Ok(())
        }
        "stream" => commands::stream(rest),
        "heal" => commands::heal(rest),
        "coverage" => commands::coverage(rest),
        "lint" => commands::lint(rest),
        "obs" => commands::obs(rest),
        "perf" => commands::perf(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
smn — Software Managed Networks via coarsening

USAGE:
  smn topology [--seed N] [--full]    describe a generated planetary WAN
  smn coarsen  [--days N]             coarsening size/fidelity summary
  smn route    <fault-kind> <target>  inject one fault and route it
                                      (kinds: hypervisor, crash, timeout,
                                       firewall, packetloss, disk, leak,
                                       config, cachestorm, backlog, flap,
                                       cert)
  smn plan     [--weeks N]            capacity planning from simulated logs
  smn run      [--days N]             continuous operation (all loops)
  smn cdg                             print the Reddit CDG as Graphviz DOT
  smn stream [--scale S] [--ticks N]  run the incremental streaming loop:
           [--seed N] [--json]         per-tick delta-apply vs full-recompute
           [--reconcile-every N]       wall time plus the reconciliation
           [--journal FILE]            verdict (exit 1 on divergence);
                                       --journal writes the delta-journal
                                       artifact smn-lint checks
  smn heal [--faults N] [--json]      run a closed-loop remediation campaign
           [--campaign FILE]          (plan/execute/verify/rollback per fault;
           [--storm-threshold PCT]     non-zero exit on a rollback storm)
  smn coverage [--seed N] [--json]    replay a campaign and gate on fault-
           [--threshold PCT]           lattice coverage (covered / uncovered /
           [--campaign FILE]           unreachable cells; non-zero exit below
           [--out FILE]                the threshold); writes the coverage-
           [--no-baseline]             report artifact with --out
  smn lint [--json] [--artifacts DIR] run smn-lint (source + artifact engines;
           [--deep]                    --deep adds the call-graph pass)
  smn obs summarize <trace.jsonl>     summarize a deterministic trace
           [--metrics FILE]           (span tree, top-N slowest spans,
           [--top N] [--json]          metric snapshot; fails on parse errors)
  smn perf record [--scale S]         run the perf suite at scale small|300|
           [--seed N] [--out FILE]     1000|3000 and write a bench-report plus
           [--profile FILE]            a folded-stack wall profile
           [--revision R]
  smn perf diff <base> <cur>          deterministic per-metric/per-phase diff
                                      of two report files or directories
  smn perf gate [--baseline PATH]     compare current reports against the
           [--current PATH]            committed baselines; exit 1 on any
           [--metric-tol F]            metric deviation or wall-time blowup
           [--wall-factor F]";
